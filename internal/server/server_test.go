package server_test

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oblidb/client"
	"oblidb/internal/core"
	"oblidb/internal/server"
	"oblidb/internal/sql"
	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wire"
	"oblidb/internal/workload"
)

// startServer runs a server on a loopback listener and returns it with
// its dialable address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0") }()
	for i := 0; srv.Addr() == nil; i++ {
		select {
		case err := <-serveErr:
			t.Fatalf("ListenAndServe: %v", err)
		default:
		}
		if i > 1000 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	return srv, srv.Addr().String()
}

// mixStatements builds a deterministic SQL statement stream for one
// workload mix against one table: the L1–L5 op categories of Figure 12
// rendered as SQL.
func mixStatements(mix workload.Mix, tbl string, rows, n int, seed uint64) []string {
	rng := rand.New(rand.NewPCG(seed, 0x51))
	span := int64(rows)
	nextKey := span
	stmts := make([]string, 0, n+2)

	create := fmt.Sprintf("CREATE TABLE %s (k INTEGER, payload VARCHAR(32)) INDEX ON k CAPACITY = %d", tbl, 4*rows)
	var tuples []string
	for k := int64(0); k < span; k++ {
		tuples = append(tuples, fmt.Sprintf("(%d, 'payload-%016d')", k, k))
	}
	stmts = append(stmts, create, fmt.Sprintf("INSERT INTO %s VALUES %s", tbl, strings.Join(tuples, ", ")))

	for _, cat := range mix.Ops(n, seed) {
		switch cat {
		case "point":
			stmts = append(stmts, fmt.Sprintf("SELECT * FROM %s WHERE k = %d", tbl, rng.Int64N(span)))
		case "small":
			lo := rng.Int64N(span)
			stmts = append(stmts, fmt.Sprintf("SELECT * FROM %s WHERE k >= %d AND k <= %d", tbl, lo, lo+9))
		case "large":
			width := span / 20
			if width < 1 {
				width = 1
			}
			lo := rng.Int64N(span)
			stmts = append(stmts, fmt.Sprintf("SELECT * FROM %s WHERE k >= %d AND k <= %d", tbl, lo, lo+width-1))
		case "insert":
			k := nextKey
			nextKey++
			stmts = append(stmts, fmt.Sprintf("INSERT INTO %s VALUES (%d, 'payload-%016d')", tbl, k, k))
		case "delete":
			stmts = append(stmts, fmt.Sprintf("DELETE FROM %s WHERE k = %d", tbl, rng.Int64N(span)))
		}
	}
	return stmts
}

// canon renders a result as an order-independent multiset: operators are
// free to order output rows differently across runs, and that order is
// not part of query semantics.
func canon(cols []string, rows []table.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return strings.Join(cols, "|") + "\n" + strings.Join(lines, "\n")
}

// TestServedMixesMatchDirectExecution is the serving path's end-to-end
// test: five concurrent client connections each run one of the L1–L5
// workload mixes as SQL through the epoch scheduler, and every result
// must equal the same statement stream executed directly against a
// private engine.
func TestServedMixesMatchDirectExecution(t *testing.T) {
	_, addr := startServer(t, server.Config{
		EpochSize:     4,
		EpochInterval: time.Millisecond,
	})

	const rows, nOps = 48, 16
	var wg sync.WaitGroup
	errs := make(chan error, len(workload.Mixes))
	for mi, mix := range workload.Mixes {
		wg.Add(1)
		go func(mi int, mix workload.Mix) {
			defer wg.Done()
			errs <- runMixClient(addr, mi, mix, rows, nOps)
		}(mi, mix)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// runMixClient executes one mix over the wire and over a direct engine,
// comparing statement by statement.
func runMixClient(addr string, mi int, mix workload.Mix, rows, nOps int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("%s: dial: %w", mix.Name, err)
	}
	defer c.Close()

	direct, err := core.Open(core.Config{})
	if err != nil {
		return fmt.Errorf("%s: direct engine: %w", mix.Name, err)
	}
	directExec := sql.New(direct)

	stmts := mixStatements(mix, fmt.Sprintf("w%d", mi), rows, nOps, 1000+uint64(mi))
	for si, stmt := range stmts {
		served, err := c.Exec(stmt)
		if err != nil {
			return fmt.Errorf("%s stmt %d (%s): served: %w", mix.Name, si, stmt, err)
		}
		want, err := directExec.Execute(stmt)
		if err != nil {
			return fmt.Errorf("%s stmt %d (%s): direct: %w", mix.Name, si, stmt, err)
		}
		got := canon(served.Cols, served.Rows)
		exp := canon(want.Cols, want.Rows)
		if got != exp {
			return fmt.Errorf("%s stmt %d (%s): served result differs from direct:\nserved:\n%s\ndirect:\n%s",
				mix.Name, si, stmt, got, exp)
		}
	}
	return nil
}

// TestEpochStreamIndependentOfClients is the trace-level obliviousness
// assertion for the serving layer: over the same window (the same
// number of scheduler epochs), a server facing a bursty client and a
// server facing an idle one produce identical observable query streams
// — same epoch count, same size per epoch, same slot-by-slot trace.
// The servers run in Manual mode so the window is exactly `epochs`
// epochs on both, with no timer jitter.
func TestEpochStreamIndependentOfClients(t *testing.T) {
	const epochSize, epochs, burst = 4, 8, 12

	traces := make([]*trace.Tracer, 2)
	streams := make([][]int, 2)
	var stats [2]struct{ real, dummy uint64 }
	for i, bursty := range []bool{true, false} {
		tr := trace.New()
		srv, addr := startServer(t, server.Config{
			EpochSize: epochSize,
			Manual:    true,
			Tracer:    tr,
		})

		var wg sync.WaitGroup
		if bursty {
			// The bursty client fires `burst` concurrent statements up
			// front, then goes silent.
			c, err := client.Dial(addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer c.Close()
			for j := 0; j < burst; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := c.Exec("SELECT COUNT(*) FROM oblidb_pad"); err != nil {
						t.Errorf("burst exec: %v", err)
					}
				}()
			}
			// Wait for the whole burst to be queued so the epoch drive
			// below is deterministic.
			for deadline := time.Now().Add(5 * time.Second); srv.Pending() < burst; {
				if time.Now().After(deadline) {
					t.Fatalf("burst never queued: %d of %d pending", srv.Pending(), burst)
				}
				time.Sleep(time.Millisecond)
			}
		}

		for e := 0; e < epochs; e++ {
			srv.RunEpoch()
		}
		wg.Wait() // epochs×epochSize = 32 slots ≥ 12 statements: all answered

		traces[i] = tr
		streams[i] = srv.ObservedStream()
		st := srv.Stats()
		stats[i].real, stats[i].dummy = st.Real, st.Dummy
		srv.Close()
	}

	// The two servers saw very different client behavior...
	if stats[0].real != burst || stats[1].real != 0 {
		t.Fatalf("real statement counts: bursty %d (want %d), idle %d (want 0)",
			stats[0].real, burst, stats[1].real)
	}
	// ...but published identical observable streams: same epoch count,
	// same size every epoch, slot-for-slot identical traces.
	for i, stream := range streams {
		if len(stream) != epochs {
			t.Fatalf("server %d: %d epochs observed, want %d", i, len(stream), epochs)
		}
		for e, size := range stream {
			if size != epochSize {
				t.Fatalf("server %d epoch %d: size %d, want %d", i, e, size, epochSize)
			}
		}
	}
	if d := trace.Diff(traces[0], traces[1]); d != "" {
		t.Fatalf("observable epoch traces differ between bursty and idle servers: %s", d)
	}
	if stats[0].real+stats[0].dummy != stats[1].real+stats[1].dummy {
		t.Fatalf("total executed statements differ: %d vs %d",
			stats[0].real+stats[0].dummy, stats[1].real+stats[1].dummy)
	}
}

// TestIdleServerStillPads checks the constant-rate property directly:
// with no clients at all, epochs tick and every slot is a dummy.
func TestIdleServerStillPads(t *testing.T) {
	srv, _ := startServer(t, server.Config{
		EpochSize:     3,
		EpochInterval: time.Millisecond,
	})
	time.Sleep(25 * time.Millisecond)
	st := srv.Stats()
	if st.Epochs == 0 {
		t.Fatal("no epochs ran on an idle server")
	}
	if st.Real != 0 {
		t.Fatalf("idle server executed %d real statements", st.Real)
	}
	if st.Dummy != st.Epochs*uint64(st.EpochSize) {
		t.Fatalf("dummy count %d does not fill %d epochs × %d slots",
			st.Dummy, st.Epochs, st.EpochSize)
	}
}

// TestPreparedStatements exercises Prepare/Exec/Close over the wire.
func TestPreparedStatements(t *testing.T) {
	_, addr := startServer(t, server.Config{
		EpochSize:     2,
		EpochInterval: time.Millisecond,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE p (k INTEGER)"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO p VALUES (1)")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	count, err := c.Prepare("SELECT COUNT(*) FROM p")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ins.Exec(); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		res, err := count.Exec()
		if err != nil {
			t.Fatalf("count %d: %v", i, err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(i) {
			t.Fatalf("count after %d inserts: %d", i, got)
		}
	}
	if err := ins.Close(); err != nil {
		t.Fatalf("close stmt: %v", err)
	}
	if _, err := c.Prepare("SELECT FROM WHERE"); err == nil {
		t.Fatal("prepare of invalid SQL succeeded")
	}
}

// TestOrderLimitAndExplainServed drives the ORDER BY / LIMIT pipeline
// and EXPLAIN end-to-end over the wire: prepared parameterized shapes
// replay compiled plans across epochs, EXPLAIN renders the plan the
// cache serves, and the server's stats publish the cache and pick
// counters.
func TestOrderLimitAndExplainServed(t *testing.T) {
	_, addr := startServer(t, server.Config{
		EpochSize:     2,
		EpochInterval: time.Millisecond,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	for _, stmt := range []string{
		"CREATE TABLE o (k INTEGER, v INTEGER) CAPACITY = 16",
		"INSERT INTO o VALUES (1, 30), (2, 10), (3, 40), (4, 20), (5, 5)",
	} {
		if _, err := c.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	top, err := c.Prepare("SELECT k, v FROM o WHERE v >= $1 ORDER BY v DESC LIMIT 2")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i := 0; i < 3; i++ {
		res, err := top.Exec(10)
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if len(res.Rows) != 2 || res.Rows[0][1].AsInt() != 40 || res.Rows[1][1].AsInt() != 30 {
			t.Fatalf("served ORDER BY LIMIT = %v", res.Rows)
		}
	}

	expl, err := c.Exec("EXPLAIN SELECT k, v FROM o WHERE v >= $1 ORDER BY v DESC LIMIT 2")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	var lines []string
	for _, r := range expl.Rows {
		lines = append(lines, r[0].AsString())
	}
	rendered := strings.Join(lines, "\n")
	for _, want := range []string{"Limit 2", "Sort v DESC", "Filter (v >= $1)", "Scan o"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("served EXPLAIN missing %q:\n%s", want, rendered)
		}
	}

	st, err := c.ServerStats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.PlanCompileSkips == 0 {
		t.Fatalf("served re-executions never replayed a compiled plan: %+v", st)
	}
	var sawSort bool
	for _, p := range st.Picks {
		if p.Name == "sort" && p.Count >= 3 {
			sawSort = true
		}
	}
	if !sawSort {
		t.Fatalf("stats picks missing sort tally: %+v", st.Picks)
	}
}

// TestPadTableReserved checks a client cannot sabotage the padding:
// DDL and mutations on the server-owned pad table are rejected, while
// reading it (what the dummy statement does) stays allowed.
func TestPadTableReserved(t *testing.T) {
	_, addr := startServer(t, server.Config{
		EpochSize:     2,
		EpochInterval: time.Millisecond,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	for _, stmt := range []string{
		"DROP TABLE oblidb_pad",
		"INSERT INTO oblidb_pad VALUES (1)",
		"UPDATE oblidb_pad SET k = 2",
		"DELETE FROM oblidb_pad",
		"CREATE TABLE OBLIDB_PAD (k INTEGER)",
	} {
		if _, err := c.Exec(stmt); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Errorf("%s: want a reserved-table error, got %v", stmt, err)
		}
		if _, err := c.Prepare(stmt); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Errorf("prepare %s: want a reserved-table error, got %v", stmt, err)
		}
	}
	res, err := c.Exec("SELECT COUNT(*) FROM oblidb_pad")
	if err != nil {
		t.Fatalf("reading the pad table should be allowed: %v", err)
	}
	if got := res.Rows[0][0].AsInt(); got != 1 {
		t.Fatalf("pad table has %d rows, want 1", got)
	}
}

// TestSlowClientDoesNotStallEpochs checks the slow-consumer policy: a
// client that submits work and never reads its socket must not stop
// the epoch cadence for everyone else.
func TestSlowClientDoesNotStallEpochs(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		EpochSize:     2,
		EpochInterval: time.Millisecond,
	})

	good, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer good.Close()
	if _, err := good.Exec("CREATE TABLE s (k INTEGER, v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := good.Exec(fmt.Sprintf("INSERT INTO s VALUES (%d, 'x')", i)); err != nil {
			t.Fatal(err)
		}
	}

	// The slow client writes requests directly and never reads a byte.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer slow.Close()
	for i := 0; i < 600; i++ {
		payload := wire.EncodeRequest(&wire.Request{
			Type: wire.TExec, ID: uint32(i), SQL: "SELECT * FROM s",
		})
		if err := wire.WriteFrame(slow, payload); err != nil {
			break // server dropped us: exactly the policy under test
		}
	}

	// The well-behaved client must still get answers promptly.
	done := make(chan error, 1)
	go func() {
		_, err := good.Exec("SELECT COUNT(*) FROM s")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("well-behaved client failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("epoch scheduler stalled behind a slow client")
	}
	if st := srv.Stats(); st.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
}

// TestGracefulShutdown closes the server while statements are in
// flight: every Exec must return (a result or a shutdown error), never
// hang.
func TestGracefulShutdown(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		EpochSize:     2,
		EpochInterval: time.Millisecond,
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE g (k INTEGER)"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	returned := make(chan struct{})
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Outcome depends on shutdown timing; what matters is that
			// the call returns.
			c.Exec(fmt.Sprintf("INSERT INTO g VALUES (%d)", i))
		}(i)
	}
	go func() { wg.Wait(); close(returned) }()
	time.Sleep(2 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-returned:
	case <-time.After(10 * time.Second):
		t.Fatal("Exec calls still blocked after server close")
	}
}

// TestPooledEpochExecution drives the worker-pool epoch executor with a
// parallel engine: results must match direct serial execution and the
// observable stream must stay one full epoch per RunEpoch.
func TestPooledEpochExecution(t *testing.T) {
	tr := trace.New()
	srv, addr := startServer(t, server.Config{
		Engine:    core.Config{Parallelism: 4},
		EpochSize: 8,
		Workers:   4,
		Manual:    true,
		Tracer:    tr,
	})

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Setup sequentially (awaited, so ordering is guaranteed even with
	// a pooled executor).
	done := make(chan error, 1)
	go func() {
		if _, err := c.Exec("CREATE TABLE p (k INTEGER, v INTEGER) CAPACITY = 256"); err != nil {
			done <- err
			return
		}
		var tuples []string
		for i := 0; i < 200; i++ {
			tuples = append(tuples, fmt.Sprintf("(%d, %d)", i, i%10))
		}
		if _, err := c.Exec("INSERT INTO p VALUES " + strings.Join(tuples, ", ")); err != nil {
			done <- err
			return
		}
		done <- nil
	}()
	pump := func() {
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Error(err)
				}
				return
			default:
				srv.RunEpoch()
			}
		}
	}
	pump()

	// A batch of concurrent read-only statements lands in shared epochs
	// and executes across the pool.
	type res struct {
		sql string
		out string
		err error
	}
	stmts := []string{
		"SELECT COUNT(*) FROM p WHERE v = 3",
		"SELECT SUM(v) FROM p",
		"SELECT * FROM p WHERE v = 7",
		"SELECT MIN(k) FROM p WHERE v > 5",
		"SELECT COUNT(*) FROM p",
		"SELECT MAX(v) FROM p WHERE k < 100",
	}
	results := make(chan res, len(stmts))
	var wg sync.WaitGroup
	for _, s := range stmts {
		wg.Add(1)
		go func(s string) {
			defer wg.Done()
			r, err := c.Exec(s)
			if err != nil {
				results <- res{sql: s, err: err}
				return
			}
			results <- res{sql: s, out: canon(r.Cols, r.Rows)}
		}(s)
	}
	go func() { wg.Wait(); done <- nil }()
	pump()
	close(results)

	// Direct serial reference.
	direct := core.MustOpen(core.Config{})
	dx := sql.New(direct)
	if _, err := dx.Execute("CREATE TABLE p (k INTEGER, v INTEGER) CAPACITY = 256"); err != nil {
		t.Fatal(err)
	}
	var tuples []string
	for i := 0; i < 200; i++ {
		tuples = append(tuples, fmt.Sprintf("(%d, %d)", i, i%10))
	}
	if _, err := dx.Execute("INSERT INTO p VALUES " + strings.Join(tuples, ", ")); err != nil {
		t.Fatal(err)
	}
	for r := range results {
		if r.err != nil {
			t.Fatalf("%s: %v", r.sql, r.err)
		}
		want, err := dx.Execute(r.sql)
		if err != nil {
			t.Fatal(err)
		}
		if got, w := r.out, canon(want.Cols, want.Rows); got != w {
			t.Fatalf("%s:\npooled: %s\ndirect: %s", r.sql, got, w)
		}
	}

	// The observable stream is full epochs only, same as the serial
	// executor produces.
	for i, n := range srv.ObservedStream() {
		if n != 8 {
			t.Fatalf("epoch %d had %d slots, want 8", i, n)
		}
	}
}
