package server

import (
	"encoding/json"
	"strconv"

	"oblidb/internal/metrics"
	"oblidb/internal/wire"
)

// serverMetrics is the server's leakage-audited metric catalog. Hot
// paths write the direct instruments; everything another layer already
// counts (plan cache, enclave I/O, storage geometry) is collected at
// scrape time through Func metrics so there is exactly one
// authoritative counter per fact.
//
// Every family here is a function of public quantities only — the
// epoch schedule, statement shapes and kinds, frame types and
// ciphertext sizes, table geometry, and the conceded plan leakage of
// §2.3 — never of data values. DESIGN.md §13 argues this per metric,
// and TestMetricsObliviousness pins it byte-for-byte.
type serverMetrics struct {
	reg *metrics.Registry

	epochsTotal   *metrics.Counter
	realTotal     *metrics.Counter
	dummyTotal    *metrics.Counter
	occupancy     *metrics.Histogram
	epochDuration *metrics.Histogram

	statements *metrics.Vec // counter by statement kind
	latency    *metrics.Vec // histogram by kind, in whole epochs waited
	slowTotal  *metrics.Counter

	framesIn  *metrics.Vec
	framesOut *metrics.Vec
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter

	txBegun      *metrics.Counter
	txCommitted  *metrics.Counter
	txRolledBack *metrics.Counter
	txAborted    *metrics.Counter

	admissionRejected *metrics.Counter
	sessionsEvicted   *metrics.Counter
}

// latencyMax bounds the epoch-latency histogram grid: a statement that
// waits more than 64 epochs is saturated into the top bucket.
const latencyMax = 64

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{reg: r}

	// Epoch scheduler: cadence, occupancy, padding.
	m.epochsTotal = r.Counter("oblidb_epochs_total", "epochs executed")
	m.realTotal = r.Counter("oblidb_statements_real_total", "client statements executed in epoch slots")
	m.dummyTotal = r.Counter("oblidb_statements_dummy_total", "dummy padding statements executed in epoch slots")
	m.occupancy = r.Histogram("oblidb_epoch_occupancy",
		"client statements per epoch before padding", metrics.ExpBuckets(s.cfg.EpochSize))
	m.epochDuration = r.Histogram("oblidb_epoch_duration_intervals",
		"epoch execution time in whole epoch intervals (quantized)", metrics.ExpBuckets(latencyMax))
	r.GaugeFunc("oblidb_epoch_slots", "statement slots per epoch (public configuration)",
		func() float64 { return float64(s.cfg.EpochSize) })
	r.GaugeFunc("oblidb_epoch_interval_ms", "epoch cadence in milliseconds (public configuration)",
		func() float64 { return float64(s.cfg.EpochInterval.Milliseconds()) })
	r.GaugeFunc("oblidb_epoch_padding_ratio", "fraction of executed statements that were dummies",
		func() float64 {
			real, dummy := float64(m.realTotal.Value()), float64(m.dummyTotal.Value())
			if real+dummy == 0 {
				return 0
			}
			return dummy / (real + dummy)
		})
	r.GaugeFunc("oblidb_statements_pending", "statements queued for future epochs",
		func() float64 { return float64(len(s.jobs)) })

	// Statements: per-kind tallies and epoch-quantized latency. The
	// latency unit is whole epochs waited (execution epoch minus
	// submission epoch) — a function of queue position and the epoch
	// schedule, with no wall-clock component.
	m.statements = r.CounterVec("oblidb_statements_total", "client statements executed by kind", "kind")
	m.latency = r.HistogramVec("oblidb_statement_latency_epochs",
		"whole epochs a statement waited between submission and execution", "kind",
		metrics.ExpBuckets(latencyMax))
	m.slowTotal = r.Counter("oblidb_slow_statements_total",
		"statements that waited at least the slow threshold of epochs")

	// Sessions and wire traffic. Byte counters are ciphertext volume —
	// sizes the untrusted network already observes.
	r.GaugeFunc("oblidb_sessions_open", "connected client sessions",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	// Overload and fault-injection accounting. All three are counts of
	// events the host observes directly (a rejected frame, a torn-down
	// connection, an injected host fault) — no data dependence. The
	// store-fault counter reads the engine's configured injector when one
	// is present and stays 0 otherwise; it registers unconditionally so
	// the catalog's shape never depends on configuration.
	m.admissionRejected = r.Counter("oblidb_admission_rejected_total",
		"statements rejected because the admission queue stayed full past the timeout")
	m.sessionsEvicted = r.Counter("oblidb_sessions_evicted_total",
		"sessions dropped for not consuming responses (slow reader or write deadline)")
	faultCount := func() uint64 { return 0 }
	if inj, ok := s.cfg.Engine.Fault.(interface{ Injected() uint64 }); ok {
		faultCount = inj.Injected
	}
	r.CounterFunc("oblidb_store_faults_injected_total",
		"transient store faults injected by the configured fault schedule", faultCount)

	m.framesIn = r.CounterVec("oblidb_frames_received_total", "protocol frames received by type", "type")
	m.framesOut = r.CounterVec("oblidb_frames_sent_total", "protocol frames sent by type", "type")
	m.bytesIn = r.Counter("oblidb_net_read_bytes_total", "protocol bytes received, including frame headers")
	m.bytesOut = r.Counter("oblidb_net_written_bytes_total", "protocol bytes sent, including frame headers")

	// Transactions and the durable journal. Counts of transaction
	// control and journal activity are functions of (public) statement
	// counts; the journal's size is a function of mutation counts and
	// schemas. All families register whether or not a journal is
	// attached, so the metric catalog's shape never depends on
	// configuration discovered at scrape time.
	m.txBegun = r.Counter("oblidb_tx_begun_total", "transactions opened")
	m.txCommitted = r.Counter("oblidb_tx_committed_total", "transactions committed")
	m.txRolledBack = r.Counter("oblidb_tx_rolled_back_total", "transactions rolled back by the client")
	m.txAborted = r.Counter("oblidb_tx_aborted_total", "transaction commits that failed and rolled back")
	r.CounterFunc("oblidb_wal_entries_total", "journal records committed durably",
		func() uint64 { return s.db.WALStats().Entries })
	r.CounterFunc("oblidb_wal_commits_total", "journal batch commits",
		func() uint64 { return s.db.WALStats().Commits })
	r.CounterFunc("oblidb_wal_checkpoints_total", "journal checkpoint compactions",
		func() uint64 { return s.db.WALStats().Checkpoints })
	r.GaugeFunc("oblidb_wal_size_bytes", "committed journal file size",
		func() float64 { return float64(s.db.WALStats().SizeBytes) })

	// SQL layer: plan cache and compiled-plan replay.
	r.GaugeFunc("oblidb_plan_cache_entries", "cached statement shapes",
		func() float64 { return float64(s.exec.CacheStats().Entries) })
	r.CounterFunc("oblidb_plan_cache_hits_total", "parse-cache hits",
		func() uint64 { return s.exec.CacheStats().Hits })
	r.CounterFunc("oblidb_plan_cache_misses_total", "parse-cache misses",
		func() uint64 { return s.exec.CacheStats().Misses })
	r.CounterFunc("oblidb_plan_compiles_total", "physical-plan compilations",
		func() uint64 { return s.exec.CacheStats().Compiles })
	r.CounterFunc("oblidb_plan_replays_total", "executions that replayed a compiled plan",
		func() uint64 { return s.exec.CacheStats().CompileSkips })

	// Engine: operator-algorithm picks (conceded plan leakage, §2.3).
	r.CounterVecFunc("oblidb_algorithm_picks_total", "operator algorithm choices", "algorithm",
		func() map[string]uint64 {
			out := make(map[string]uint64)
			for _, p := range enginePicks(s.db.PlanStats()) {
				out[p.Name] = p.Count
			}
			return out
		})

	// Enclave boundary: sealed-block I/O (the access sequence the host
	// observes anyway) and the oblivious-memory accountant.
	r.CounterFunc("oblidb_enclave_blocks_opened_total", "sealed blocks read and opened across all enclaves",
		func() uint64 { return s.db.IOStats().BlocksOpened })
	r.CounterFunc("oblidb_enclave_blocks_sealed_total", "blocks sealed and written across all enclaves",
		func() uint64 { return s.db.IOStats().BlocksSealed })
	r.CounterFunc("oblidb_enclave_bytes_opened_total", "plaintext bytes opened from sealed blocks",
		func() uint64 { return s.db.IOStats().BytesOpened })
	r.CounterFunc("oblidb_enclave_bytes_sealed_total", "plaintext bytes sealed into blocks",
		func() uint64 { return s.db.IOStats().BytesSealed })
	r.GaugeFunc("oblidb_enclave_oblivious_memory_budget_bytes", "configured oblivious memory budget",
		func() float64 { return float64(s.db.Enclave().Budget()) })
	r.GaugeFunc("oblidb_enclave_oblivious_memory_in_use_bytes", "oblivious memory currently reserved",
		func() float64 { return float64(s.db.Enclave().Used()) })
	r.GaugeFunc("oblidb_enclave_oblivious_memory_peak_bytes", "high-water mark of reserved oblivious memory",
		func() float64 { return float64(s.db.Enclave().PeakUsed()) })
	r.GaugeFunc("oblidb_enclave_workers", "partition-parallel worker enclaves",
		func() float64 { return float64(s.db.Parallelism()) })
	r.GaugeFunc("oblidb_engine_read_slots", "concurrent read-slot contexts (public configuration)",
		func() float64 { return float64(s.db.ReadConcurrency()) })

	// Engine lock contention: how often statements took each side of the
	// database lock, and how many of those acquisitions had to wait.
	// These are counts of statement executions by kind — conceded by the
	// epoch slot stream — with no timing component (DESIGN.md §13).
	r.CounterVecFunc("oblidb_engine_lock_acquires_total", "database lock acquisitions by side", "side",
		func() map[string]uint64 {
			ls := s.db.LockStats()
			return map[string]uint64{"shared": ls.SharedAcquires, "exclusive": ls.ExclusiveAcquires}
		})
	r.CounterVecFunc("oblidb_engine_lock_waits_total", "database lock acquisitions that blocked", "side",
		func() map[string]uint64 {
			ls := s.db.LockStats()
			return map[string]uint64{"shared": ls.SharedWaits, "exclusive": ls.ExclusiveWaits}
		})

	// Storage: flat-table geometry. rows_per_block is a closed label
	// set (the packing knob), so per-geometry gauges stay low-cardinality.
	r.GaugeVecFunc("oblidb_storage_tables", "flat tables by packing geometry", "rows_per_block",
		func() map[string]float64 {
			out := make(map[string]float64)
			for r, g := range s.db.StorageStats() {
				out[strconv.Itoa(r)] = float64(g.Tables)
			}
			return out
		})
	r.GaugeVecFunc("oblidb_storage_blocks", "sealed blocks by packing geometry", "rows_per_block",
		func() map[string]float64 {
			out := make(map[string]float64)
			for r, g := range s.db.StorageStats() {
				out[strconv.Itoa(r)] = float64(g.Blocks)
			}
			return out
		})
	r.GaugeFunc("oblidb_storage_untrusted_bytes", "total untrusted bytes held by flat tables, sealing overhead included",
		func() float64 {
			var total int
			for _, g := range s.db.StorageStats() {
				total += g.UntrustedBytes
			}
			return float64(total)
		})
	r.GaugeFunc("oblidb_catalog_epoch", "catalog epoch (bumped by DDL, voids compiled plans)",
		func() float64 { return float64(s.db.CatalogEpoch()) })

	return m
}

// frameTypeName maps a wire message type to its metric label. The set
// is closed by the protocol definition.
func frameTypeName(t byte) string {
	switch t {
	case wire.TExec:
		return "exec"
	case wire.TPrepare:
		return "prepare"
	case wire.TExecPrepared:
		return "exec_prepared"
	case wire.TClosePrepared:
		return "close_prepared"
	case wire.TStats:
		return "stats"
	case wire.TResult:
		return "result"
	case wire.TError:
		return "error"
	case wire.TPrepared:
		return "prepared"
	case wire.TStatsResult:
		return "stats_result"
	case wire.TBegin:
		return "begin"
	case wire.TCommit:
		return "commit"
	case wire.TRollback:
		return "rollback"
	}
	return "unknown"
}

// Metrics returns the server's metric registry, the same one the debug
// listener exposes at /metrics and /debug/vars.
func (s *Server) Metrics() *metrics.Registry { return s.m.reg }

// metricsJSON renders the registry snapshot for the wire.Stats v3
// extension. Map keys marshal sorted, so the encoding is deterministic.
func (s *Server) metricsJSON() string {
	data, err := json.Marshal(s.m.reg.Snapshot())
	if err != nil {
		return ""
	}
	return string(data)
}
