// Package table defines schemas, typed values, and the fixed-length record
// encoding ObliDB stores in blocks. The paper's implementation "assumes
// records are of fixed length and also stores a boolean flag with each
// record indicating whether it is in use" (§3); this package implements
// exactly that layout so flat storage and B+ tree leaves share one codec.
package table

import (
	"fmt"
	"strings"
)

// Kind enumerates column types.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer. Dates are stored as days since
	// the epoch using this kind.
	KindInt Kind = iota
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a fixed-width string column (width set per column).
	KindString
	// KindBool is a boolean.
	KindBool
	// KindNull is the kind of the SQL NULL value. It is a legal value
	// kind for bound statement parameters only — never a column kind
	// (NewSchema rejects it).
	KindNull
)

// String names the kind as its SQL type keyword.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindNull:
		return "NULL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Column describes one column. Width is the maximum byte length for
// KindString and ignored otherwise.
type Column struct {
	Name  string
	Kind  Kind
	Width int
}

// encodedSize returns the fixed on-block size of a column value.
func (c Column) encodedSize() int {
	switch c.Kind {
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 2 + c.Width // length prefix + padded bytes
	}
	panic("table: unknown column kind")
}

// Schema is an ordered set of columns with a fixed row encoding.
type Schema struct {
	cols    []Column
	offsets []int
	byName  map[string]int
	rowSize int
}

// NewSchema validates columns and computes the encoding layout.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: schema needs at least one column")
	}
	s := &Schema{
		cols:    append([]Column(nil), cols...),
		offsets: make([]int, len(cols)),
		byName:  make(map[string]int, len(cols)),
	}
	off := 0
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		name := strings.ToLower(c.Name)
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		if c.Kind == KindString && c.Width <= 0 {
			return nil, fmt.Errorf("table: string column %q needs positive width", c.Name)
		}
		if c.Kind > KindBool {
			return nil, fmt.Errorf("table: column %q has unknown kind", c.Name)
		}
		s.byName[name] = i
		s.offsets[i] = off
		off += c.encodedSize()
	}
	s.rowSize = off
	return s, nil
}

// MustSchema is NewSchema that panics on error, for literals in tests and
// examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns the schema's columns. Callers must not mutate the slice.
func (s *Schema) Columns() []Column { return s.cols }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// RowSize returns the fixed encoded size of one row in bytes.
func (s *Schema) RowSize() int { return s.rowSize }

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Col returns the column at index i.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// String renders the schema as a DDL-ish column list.
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		if c.Kind == KindString {
			parts[i] = fmt.Sprintf("%s %s(%d)", c.Name, c.Kind, c.Width)
		} else {
			parts[i] = fmt.Sprintf("%s %s", c.Name, c.Kind)
		}
	}
	return strings.Join(parts, ", ")
}

// Equal reports whether two schemas have identical columns.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}
