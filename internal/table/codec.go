package table

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record layout: a one-byte used flag followed by the fixed-length row
// encoding. A record with flag 0 is a dummy — either never-written space
// or a row "marked unused and overwritten with dummy data" by a delete or
// by an oblivious operator writing filler (§3.1, §4).

// RecordSize returns the fixed block payload size for rows of this schema.
func (s *Schema) RecordSize() int { return 1 + s.rowSize }

// EncodeRecord writes a used record for row r into dst, which must be at
// least RecordSize bytes. Bytes beyond the record are left untouched.
func (s *Schema) EncodeRecord(dst []byte, r Row) error {
	if len(dst) < s.RecordSize() {
		return fmt.Errorf("table: record buffer too small: %d < %d", len(dst), s.RecordSize())
	}
	dst[0] = 1
	return s.encodeRow(dst[1:], r)
}

// EncodeDummy writes an unused (dummy) record into dst. The payload is
// zeroed so dummy records are deterministic plaintext; sealing randomizes
// the ciphertext.
func (s *Schema) EncodeDummy(dst []byte) error {
	if len(dst) < s.RecordSize() {
		return fmt.Errorf("table: record buffer too small: %d < %d", len(dst), s.RecordSize())
	}
	for i := 0; i < s.RecordSize(); i++ {
		dst[i] = 0
	}
	return nil
}

// DecodeRecord parses a record. used=false means the block holds no row;
// the returned Row is nil in that case.
func (s *Schema) DecodeRecord(b []byte) (row Row, used bool, err error) {
	if len(b) < s.RecordSize() {
		return nil, false, fmt.Errorf("table: record too short: %d < %d", len(b), s.RecordSize())
	}
	if b[0] == 0 {
		return nil, false, nil
	}
	row, err = s.decodeRow(b[1:])
	return row, true, err
}

// encodeRow writes the row's fixed encoding into dst (rowSize bytes).
func (s *Schema) encodeRow(dst []byte, r Row) error {
	if len(r) != len(s.cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(r), len(s.cols))
	}
	for i, c := range s.cols {
		v := r[i]
		if !kindAssignable(c.Kind, v.Kind) {
			return fmt.Errorf("table: column %q is %s, got %s", c.Name, c.Kind, v.Kind)
		}
		field := dst[s.offsets[i]:]
		switch c.Kind {
		case KindInt:
			binary.LittleEndian.PutUint64(field, uint64(v.AsInt()))
		case KindFloat:
			binary.LittleEndian.PutUint64(field, math.Float64bits(v.AsFloat()))
		case KindBool:
			field[0] = byte(v.int64 & 1)
		case KindString:
			str := v.str
			if len(str) > c.Width {
				return fmt.Errorf("table: value %q exceeds column %q width %d", str, c.Name, c.Width)
			}
			binary.LittleEndian.PutUint16(field, uint16(len(str)))
			n := copy(field[2:2+c.Width], str)
			for j := 2 + n; j < 2+c.Width; j++ {
				field[j] = 0
			}
		}
	}
	return nil
}

// decodeRow parses the fixed encoding back into a Row.
func (s *Schema) decodeRow(b []byte) (Row, error) {
	row := make(Row, len(s.cols))
	for i, c := range s.cols {
		field := b[s.offsets[i]:]
		switch c.Kind {
		case KindInt:
			row[i] = Int(int64(binary.LittleEndian.Uint64(field)))
		case KindFloat:
			row[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(field)))
		case KindBool:
			row[i] = Bool(field[0] != 0)
		case KindString:
			n := int(binary.LittleEndian.Uint16(field))
			if n > c.Width {
				return nil, fmt.Errorf("table: corrupt string length %d > width %d in column %q", n, c.Width, c.Name)
			}
			row[i] = Str(string(field[2 : 2+n]))
		}
	}
	return row, nil
}

// kindAssignable reports whether a value of kind v can be stored in a
// column of kind c. Ints widen to floats, matching SQL numeric coercion.
func kindAssignable(c, v Kind) bool {
	if c == v {
		return true
	}
	return c == KindFloat && v == KindInt
}

// ValidateRow checks a row against the schema without encoding it.
func (s *Schema) ValidateRow(r Row) error {
	if len(r) != len(s.cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(r), len(s.cols))
	}
	for i, c := range s.cols {
		if !kindAssignable(c.Kind, r[i].Kind) {
			return fmt.Errorf("table: column %q is %s, got %s", c.Name, c.Kind, r[i].Kind)
		}
		if c.Kind == KindString && len(r[i].str) > c.Width {
			return fmt.Errorf("table: value %q exceeds column %q width %d", r[i].str, c.Name, c.Width)
		}
	}
	return nil
}
