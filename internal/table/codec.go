package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Record layout: a one-byte used flag followed by the fixed-length row
// encoding. A record with flag 0 is a dummy — either never-written space
// or a row "marked unused and overwritten with dummy data" by a delete or
// by an oblivious operator writing filler (§3.1, §4).
//
// Block layout: R records packed back to back. The paper's design (§3)
// only requires that the *block* be the sealed unit, so packing R > 1
// records per block divides the per-row sealing, tracing, and allocation
// cost of every full-table pass by R. R is public geometry, fixed per
// table at creation.

// RecordSize returns the fixed block payload size for rows of this schema.
func (s *Schema) RecordSize() int { return 1 + s.rowSize }

// BlockSize returns the plaintext size of a block packing r records.
func (s *Schema) BlockSize(r int) int { return r * s.RecordSize() }

// EncodeRecordAt writes a used record for row r at slot j of a packed
// block. The rest of the block is left untouched.
func (s *Schema) EncodeRecordAt(dst []byte, j int, r Row) error {
	return s.EncodeRecord(dst[j*s.RecordSize():], r)
}

// EncodeDummyAt writes an unused (dummy) record at slot j of a packed
// block.
func (s *Schema) EncodeDummyAt(dst []byte, j int) error {
	return s.EncodeDummy(dst[j*s.RecordSize():])
}

// UsedAt reports whether slot j of a packed block holds a live record,
// without decoding it. It reads only the flag byte, so geometry passes
// (insert's first-free search, compaction counts) stay cheap.
func (s *Schema) UsedAt(b []byte, j int) bool {
	return b[j*s.RecordSize()] != 0
}

// DecodeRecordAt parses slot j of a packed block into a fresh Row.
func (s *Schema) DecodeRecordAt(b []byte, j int) (Row, bool, error) {
	return s.DecodeRecord(b[j*s.RecordSize():])
}

// DecodeRecordInto parses slot j of a packed block into dst, which must
// have exactly NumColumns entries. It allocates nothing: numeric values
// decode in place and string values alias b directly, so the decoded
// row is valid only until b is reused — callers retaining a row (or any
// of its values) past that must Clone it. When the slot is a dummy, dst
// is left untouched and used is false.
func (s *Schema) DecodeRecordInto(dst Row, b []byte, j int) (used bool, err error) {
	rec := b[j*s.RecordSize():]
	if len(rec) < s.RecordSize() {
		return false, fmt.Errorf("table: record too short: %d < %d", len(rec), s.RecordSize())
	}
	if rec[0] == 0 {
		return false, nil
	}
	if len(dst) != len(s.cols) {
		return false, fmt.Errorf("table: decode scratch has %d values, schema has %d columns", len(dst), len(s.cols))
	}
	return true, s.decodeRowInto(dst, rec[1:], true)
}

// BlockBuf is a caller-owned scratch buffer holding one decoded packed
// block: R rows plus their used flags. Steady-state scans allocate one
// BlockBuf up front and reuse it for every block; the rows inside are
// overwritten by each decode, so callers must Clone any row they retain.
type BlockBuf struct {
	rows []Row
	used []bool
}

// NewBlockBuf allocates a scratch buffer for blocks of r records.
func (s *Schema) NewBlockBuf(r int) *BlockBuf {
	buf := &BlockBuf{rows: make([]Row, r), used: make([]bool, r)}
	for j := range buf.rows {
		buf.rows[j] = make(Row, len(s.cols))
	}
	return buf
}

// Len returns the buffer's slot count R.
func (b *BlockBuf) Len() int { return len(b.rows) }

// Row returns slot j's decoded row and used flag. The row aliases the
// buffer's scratch: it is valid until the next decode into this buffer.
func (b *BlockBuf) Row(j int) (Row, bool) {
	if !b.used[j] {
		return nil, false
	}
	return b.rows[j], true
}

// SetAllDummy marks every slot unused (padding blocks past a table's
// real extent decode as all dummies without an untrusted access).
func (b *BlockBuf) SetAllDummy() {
	for j := range b.used {
		b.used[j] = false
	}
}

// DecodeBlockInto parses a packed block's records into buf, whose slot
// count fixes R. Slots beyond the block's payload would be an error.
func (s *Schema) DecodeBlockInto(buf *BlockBuf, b []byte) error {
	if len(b) < s.BlockSize(buf.Len()) {
		return fmt.Errorf("table: block too short: %d < %d", len(b), s.BlockSize(buf.Len()))
	}
	for j := range buf.rows {
		used, err := s.DecodeRecordInto(buf.rows[j], b, j)
		if err != nil {
			return err
		}
		buf.used[j] = used
	}
	return nil
}

// EncodeRecord writes a used record for row r into dst, which must be at
// least RecordSize bytes. Bytes beyond the record are left untouched.
func (s *Schema) EncodeRecord(dst []byte, r Row) error {
	if len(dst) < s.RecordSize() {
		return fmt.Errorf("table: record buffer too small: %d < %d", len(dst), s.RecordSize())
	}
	dst[0] = 1
	return s.encodeRow(dst[1:], r)
}

// EncodeDummy writes an unused (dummy) record into dst. The payload is
// zeroed so dummy records are deterministic plaintext; sealing randomizes
// the ciphertext.
func (s *Schema) EncodeDummy(dst []byte) error {
	if len(dst) < s.RecordSize() {
		return fmt.Errorf("table: record buffer too small: %d < %d", len(dst), s.RecordSize())
	}
	for i := 0; i < s.RecordSize(); i++ {
		dst[i] = 0
	}
	return nil
}

// DecodeRecord parses a record. used=false means the block holds no row;
// the returned Row is nil in that case.
func (s *Schema) DecodeRecord(b []byte) (row Row, used bool, err error) {
	if len(b) < s.RecordSize() {
		return nil, false, fmt.Errorf("table: record too short: %d < %d", len(b), s.RecordSize())
	}
	if b[0] == 0 {
		return nil, false, nil
	}
	row, err = s.decodeRow(b[1:])
	return row, true, err
}

// encodeRow writes the row's fixed encoding into dst (rowSize bytes).
func (s *Schema) encodeRow(dst []byte, r Row) error {
	if len(r) != len(s.cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(r), len(s.cols))
	}
	for i, c := range s.cols {
		v := r[i]
		if !kindAssignable(c.Kind, v.Kind) {
			return fmt.Errorf("table: column %q is %s, got %s", c.Name, c.Kind, v.Kind)
		}
		field := dst[s.offsets[i]:]
		switch c.Kind {
		case KindInt:
			binary.LittleEndian.PutUint64(field, uint64(v.AsInt()))
		case KindFloat:
			binary.LittleEndian.PutUint64(field, math.Float64bits(v.AsFloat()))
		case KindBool:
			field[0] = byte(v.int64 & 1)
		case KindString:
			str := v.str
			if len(str) > c.Width {
				return fmt.Errorf("table: value %q exceeds column %q width %d", str, c.Name, c.Width)
			}
			binary.LittleEndian.PutUint16(field, uint16(len(str)))
			n := copy(field[2:2+c.Width], str)
			for j := 2 + n; j < 2+c.Width; j++ {
				field[j] = 0
			}
		}
	}
	return nil
}

// decodeRow parses the fixed encoding back into a fresh Row whose
// string values are self-contained copies.
func (s *Schema) decodeRow(b []byte) (Row, error) {
	row := make(Row, len(s.cols))
	if err := s.decodeRowInto(row, b, false); err != nil {
		return nil, err
	}
	return row, nil
}

// decodeRowInto parses the fixed encoding into an existing Row, writing
// each column value in place. With alias set, string values point
// directly into b — zero allocations, valid only until b is reused;
// retained values must be detached with Clone. Without it, strings are
// copied out and the row owns its payloads.
func (s *Schema) decodeRowInto(row Row, b []byte, alias bool) error {
	for i, c := range s.cols {
		field := b[s.offsets[i]:]
		switch c.Kind {
		case KindInt:
			row[i] = Int(int64(binary.LittleEndian.Uint64(field)))
		case KindFloat:
			row[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(field)))
		case KindBool:
			row[i] = Bool(field[0] != 0)
		case KindString:
			n := int(binary.LittleEndian.Uint16(field))
			if n > c.Width {
				return fmt.Errorf("table: corrupt string length %d > width %d in column %q", n, c.Width, c.Name)
			}
			if alias {
				row[i] = Str(aliasString(field[2 : 2+n]))
			} else {
				row[i] = Str(string(field[2 : 2+n]))
			}
		}
	}
	return nil
}

// aliasString views a byte slice as a string without copying. The
// string is valid only while the underlying buffer is; it is the
// zero-allocation half of the scratch-decode contract.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// kindAssignable reports whether a value of kind v can be stored in a
// column of kind c. Ints widen to floats, matching SQL numeric coercion.
func kindAssignable(c, v Kind) bool {
	if c == v {
		return true
	}
	return c == KindFloat && v == KindInt
}

// ValidateRow checks a row against the schema without encoding it.
func (s *Schema) ValidateRow(r Row) error {
	if len(r) != len(s.cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(r), len(s.cols))
	}
	for i, c := range s.cols {
		if !kindAssignable(c.Kind, r[i].Kind) {
			return fmt.Errorf("table: column %q is %s, got %s", c.Name, c.Kind, r[i].Kind)
		}
		if c.Kind == KindString && len(r[i].str) > c.Width {
			return fmt.Errorf("table: value %q exceeds column %q width %d", r[i].str, c.Name, c.Width)
		}
	}
	return nil
}
