package table

// Pred is a row predicate, evaluated entirely inside the enclave. Operator
// obliviousness never depends on a predicate's outcome — only on the sizes
// the planner has already leaked — which the trace-equality tests verify.
type Pred func(Row) bool

// Updater rewrites a row in place for UPDATE operators. It must return a
// row of the same schema.
type Updater func(Row) Row

// All matches every row.
func All(Row) bool { return true }

// None matches no row.
func None(Row) bool { return false }
