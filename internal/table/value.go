package table

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Value is a dynamically typed cell value. It is a tagged union rather
// than an interface so rows can be compared and copied without heap
// traffic on the hot operator paths.
type Value struct {
	Kind  Kind
	int64 int64
	f64   float64
	str   string
}

// Int constructs an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, int64: v} }

// Float constructs a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, f64: v} }

// Str constructs a string value.
func Str(v string) Value { return Value{Kind: KindString, str: v} }

// Bool constructs a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, int64: i}
}

// Null constructs the SQL NULL value. NULL is a value kind, not a
// column kind: it exists so bound statement parameters can carry "no
// value" through the wire protocol and the binder, but no column stores
// it (NewSchema rejects it) and comparisons against it error.
func Null() Value { return Value{Kind: KindNull} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// FromAny converts a Go value into a Value: all int/uint widths,
// float32/64, string, []byte, bool, nil (NULL), time.Time (as a DATE:
// days since the Unix epoch, matching KindInt's date convention), and
// Value itself. It is the single conversion used by every
// parameter-binding surface (public API, network client, database/sql
// driver), so the accepted types are the same everywhere.
func FromAny(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null(), nil
	case Value:
		return x, nil
	case time.Time:
		// Floor division so pre-1970 instants land on the right day.
		secs := x.Unix()
		days := secs / 86400
		if secs%86400 < 0 {
			days--
		}
		return Int(days), nil
	case int:
		return Int(int64(x)), nil
	case int8:
		return Int(int64(x)), nil
	case int16:
		return Int(int64(x)), nil
	case int32:
		return Int(int64(x)), nil
	case int64:
		return Int(x), nil
	case uint:
		if uint64(x) > 1<<63-1 {
			return Value{}, fmt.Errorf("table: uint argument %d overflows int64", x)
		}
		return Int(int64(x)), nil
	case uint8:
		return Int(int64(x)), nil
	case uint16:
		return Int(int64(x)), nil
	case uint32:
		return Int(int64(x)), nil
	case uint64:
		if x > 1<<63-1 {
			return Value{}, fmt.Errorf("table: uint64 argument %d overflows int64", x)
		}
		return Int(int64(x)), nil
	case float32:
		return Float(float64(x)), nil
	case float64:
		return Float(x), nil
	case string:
		return Str(x), nil
	case []byte:
		return Str(string(x)), nil
	case bool:
		return Bool(x), nil
	}
	return Value{}, fmt.Errorf("table: cannot bind argument of type %T", v)
}

// AsInt returns the integer payload (valid for KindInt and KindBool).
func (v Value) AsInt() int64 { return v.int64 }

// AsFloat returns the float payload, converting integers.
func (v Value) AsFloat() float64 {
	if v.Kind == KindFloat {
		return v.f64
	}
	return float64(v.int64)
}

// AsString returns the string payload.
func (v Value) AsString() string { return v.str }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.int64 != 0 }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Compare orders two values. Numeric kinds compare numerically against
// each other; otherwise kinds must match. It returns -1, 0, or +1.
func Compare(a, b Value) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		if a.Kind == KindInt && b.Kind == KindInt {
			return cmpOrdered(a.int64, b.int64), nil
		}
		return cmpOrdered(a.AsFloat(), b.AsFloat()), nil
	}
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("table: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case KindString:
		return cmpOrdered(a.str, b.str), nil
	case KindBool:
		return cmpOrdered(a.int64, b.int64), nil
	}
	return 0, fmt.Errorf("table: cannot compare %s values", a.Kind)
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.int64, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f64, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindBool:
		if v.int64 != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindNull:
		return "NULL"
	}
	return "?"
}

// Equal reports deep equality of two values (numeric cross-kind equality
// included, matching Compare).
func (v Value) Equal(o Value) bool {
	c, err := Compare(v, o)
	return err == nil && c == 0
}

// Clone returns a self-contained copy of the value: string payloads are
// copied out of whatever buffer they alias. Rows decoded into scratch
// (Schema.DecodeRecordInto, Flat.Scan, exec.ForEachRow) alias the reused
// block buffer for speed; any value retained past the current row must
// be detached with Clone.
func (v Value) Clone() Value {
	v.str = strings.Clone(v.str)
	return v
}

// Row is one tuple of values, ordered per its schema.
type Row []Value

// Clone returns a self-contained copy of the row (see Value.Clone: the
// copy is detached from any scratch buffer the source row aliases).
func (r Row) Clone() Row {
	cp := make(Row, len(r))
	for i, v := range r {
		cp[i] = v.Clone()
	}
	return cp
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
