package table

import (
	"fmt"
	"strconv"
)

// Value is a dynamically typed cell value. It is a tagged union rather
// than an interface so rows can be compared and copied without heap
// traffic on the hot operator paths.
type Value struct {
	Kind  Kind
	int64 int64
	f64   float64
	str   string
}

// Int constructs an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, int64: v} }

// Float constructs a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, f64: v} }

// Str constructs a string value.
func Str(v string) Value { return Value{Kind: KindString, str: v} }

// Bool constructs a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, int64: i}
}

// AsInt returns the integer payload (valid for KindInt and KindBool).
func (v Value) AsInt() int64 { return v.int64 }

// AsFloat returns the float payload, converting integers.
func (v Value) AsFloat() float64 {
	if v.Kind == KindFloat {
		return v.f64
	}
	return float64(v.int64)
}

// AsString returns the string payload.
func (v Value) AsString() string { return v.str }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.int64 != 0 }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Compare orders two values. Numeric kinds compare numerically against
// each other; otherwise kinds must match. It returns -1, 0, or +1.
func Compare(a, b Value) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		if a.Kind == KindInt && b.Kind == KindInt {
			return cmpOrdered(a.int64, b.int64), nil
		}
		return cmpOrdered(a.AsFloat(), b.AsFloat()), nil
	}
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("table: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case KindString:
		return cmpOrdered(a.str, b.str), nil
	case KindBool:
		return cmpOrdered(a.int64, b.int64), nil
	}
	return 0, fmt.Errorf("table: cannot compare %s values", a.Kind)
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.int64, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f64, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindBool:
		if v.int64 != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Equal reports deep equality of two values (numeric cross-kind equality
// included, matching Compare).
func (v Value) Equal(o Value) bool {
	c, err := Compare(v, o)
	return err == nil && c == 0
}

// Row is one tuple of values, ordered per its schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	cp := make(Row, len(r))
	copy(cp, r)
	return cp
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
