package table

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "score", Kind: KindFloat},
		Column{Name: "name", Kind: KindString, Width: 16},
		Column{Name: "active", Kind: KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema(t)
	// 8 (int) + 8 (float) + 2+16 (string) + 1 (bool)
	if s.RowSize() != 35 {
		t.Fatalf("RowSize = %d, want 35", s.RowSize())
	}
	if s.RecordSize() != 36 {
		t.Fatalf("RecordSize = %d, want 36", s.RecordSize())
	}
	if s.ColIndex("NAME") != 2 || s.ColIndex("name") != 2 {
		t.Fatal("ColIndex should be case-insensitive")
	}
	if s.ColIndex("missing") != -1 {
		t.Fatal("missing column should give -1")
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"empty", nil},
		{"anonymous column", []Column{{Kind: KindInt}}},
		{"duplicate (case-insensitive)", []Column{{Name: "A", Kind: KindInt}, {Name: "a", Kind: KindInt}}},
		{"string without width", []Column{{Name: "s", Kind: KindString}}},
		{"bad kind", []Column{{Name: "x", Kind: Kind(9)}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.cols...); err == nil {
			t.Errorf("%s: schema accepted", c.name)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	s := testSchema(t)
	row := Row{Int(42), Float(3.5), Str("alice"), Bool(true)}
	buf := make([]byte, s.RecordSize())
	if err := s.EncodeRecord(buf, row); err != nil {
		t.Fatal(err)
	}
	got, used, err := s.DecodeRecord(buf)
	if err != nil || !used {
		t.Fatalf("decode: used=%v err=%v", used, err)
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Fatalf("column %d: got %v want %v", i, got[i], row[i])
		}
	}
}

func TestDummyRecord(t *testing.T) {
	s := testSchema(t)
	buf := make([]byte, s.RecordSize())
	_ = s.EncodeRecord(buf, Row{Int(1), Float(1), Str("x"), Bool(false)})
	if err := s.EncodeDummy(buf); err != nil {
		t.Fatal(err)
	}
	row, used, err := s.DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used || row != nil {
		t.Fatal("dummy record decoded as used")
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("dummy record not zeroed")
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	s := testSchema(t)
	buf := make([]byte, s.RecordSize())
	if err := s.EncodeRecord(buf[:3], Row{Int(1), Float(1), Str(""), Bool(false)}); err == nil {
		t.Error("short buffer accepted")
	}
	if err := s.EncodeRecord(buf, Row{Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.EncodeRecord(buf, Row{Str("x"), Float(1), Str(""), Bool(false)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := s.EncodeRecord(buf, Row{Int(1), Float(1), Str(strings.Repeat("z", 17)), Bool(false)}); err == nil {
		t.Error("overwide string accepted")
	}
}

func TestIntWidensToFloat(t *testing.T) {
	s := MustSchema(Column{Name: "v", Kind: KindFloat})
	buf := make([]byte, s.RecordSize())
	if err := s.EncodeRecord(buf, Row{Int(7)}); err != nil {
		t.Fatal(err)
	}
	row, _, _ := s.DecodeRecord(buf)
	if row[0].AsFloat() != 7.0 {
		t.Fatalf("got %v, want 7.0", row[0])
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("cross-kind compare of string/int accepted")
	}
}

func TestValueStrings(t *testing.T) {
	if Int(-3).String() != "-3" || Bool(true).String() != "TRUE" || Str("x").String() != `"x"` {
		t.Fatal("value rendering wrong")
	}
}

func TestValidateRow(t *testing.T) {
	s := testSchema(t)
	ok := Row{Int(1), Float(2), Str("ok"), Bool(true)}
	if err := s.ValidateRow(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateRow(ok[:2]); err == nil {
		t.Error("short row validated")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].AsInt() != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	str := s.String()
	if !strings.Contains(str, "VARCHAR(16)") || !strings.Contains(str, "id INTEGER") {
		t.Fatalf("unexpected schema string %q", str)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Fatal("identical schemas not equal")
	}
	c := MustSchema(Column{Name: "id", Kind: KindInt})
	if a.Equal(c) {
		t.Fatal("different schemas equal")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	s := testSchema(t)
	buf := make([]byte, s.RecordSize())
	f := func(id int64, score float64, name string, active bool) bool {
		if math.IsNaN(score) {
			score = 0 // NaN != NaN; excluded from equality property
		}
		if len(name) > 16 {
			name = name[:16]
		}
		if strings.ContainsRune(name, 0xFFFD) {
			// quick can generate invalid UTF-16 surrogate strings whose
			// byte length exceeds rune count; keep it simple.
			name = "fallback"
		}
		if len(name) > 16 {
			name = name[:16]
		}
		row := Row{Int(id), Float(score), Str(name), Bool(active)}
		if s.ValidateRow(row) != nil {
			return true // skip rows the schema rejects (e.g. slicing split a rune)
		}
		if err := s.EncodeRecord(buf, row); err != nil {
			return false
		}
		got, used, err := s.DecodeRecord(buf)
		if err != nil || !used {
			return false
		}
		for i := range row {
			if !got[i].Equal(row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
