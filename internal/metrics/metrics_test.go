package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations executed")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "queue depth")
	g.Set(3)
	g.Add(-0.5)
	h := r.Histogram("test_latency_epochs", "latency in epochs", []float64{0, 1, 2, 4})
	for _, v := range []float64{0, 0, 1, 3, 9} {
		h.Observe(v)
	}
	v := r.CounterVec("test_statements_total", "statements by kind", "kind")
	v.WithCounter("select").Add(2)
	v.WithCounter("insert").Inc()
	r.GaugeFunc("test_collected", "collected at scrape", func() float64 { return 7 })
	r.CounterVecFunc("test_picks_total", "algorithm picks", "algorithm",
		func() map[string]uint64 { return map[string]uint64{"b": 2, "a": 1} })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP test_ops_total operations executed
# TYPE test_ops_total counter
test_ops_total 42
# HELP test_depth queue depth
# TYPE test_depth gauge
test_depth 2.5
# HELP test_latency_epochs latency in epochs
# TYPE test_latency_epochs histogram
test_latency_epochs_bucket{le="0"} 2
test_latency_epochs_bucket{le="1"} 3
test_latency_epochs_bucket{le="2"} 3
test_latency_epochs_bucket{le="4"} 4
test_latency_epochs_bucket{le="+Inf"} 5
test_latency_epochs_sum 13
test_latency_epochs_count 5
# HELP test_statements_total statements by kind
# TYPE test_statements_total counter
test_statements_total{kind="insert"} 1
test_statements_total{kind="select"} 2
# HELP test_collected collected at scrape
# TYPE test_collected gauge
test_collected 7
# HELP test_picks_total algorithm picks
# TYPE test_picks_total counter
test_picks_total{algorithm="a"} 1
test_picks_total{algorithm="b"} 2
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if problems, err := Lint(strings.NewReader(got)); err != nil || len(problems) != 0 {
		t.Errorf("self-exposition fails lint: %v %v", problems, err)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("det_total", "determinism probe", "k")
	for i := 0; i < 10; i++ {
		v.WithCounter(fmt.Sprintf("k%d", i)).Add(uint64(i))
	}
	render := func() string {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 20; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition not deterministic on render %d", i)
		}
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cap_total", "cap probe", "k")
	for i := 0; i < MaxChildren+10; i++ {
		v.WithCounter(fmt.Sprintf("k%03d", i)).Inc()
	}
	other := v.WithCounter(OverflowLabel)
	if got := other.Value(); got != 11 {
		t.Fatalf("overflow child absorbed %d increments, want 11", got)
	}
	// An already-created child keeps working past the cap.
	v.WithCounter("k001").Inc()
	if got := v.WithCounter("k001").Value(); got != 2 {
		t.Fatalf("existing child after cap: %d, want 2", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if problems, err := Lint(strings.NewReader(sb.String())); err != nil || len(problems) != 0 {
		t.Errorf("capped vec fails lint: %v %v", problems, err)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "count").Add(5)
	h := r.Histogram("snap_hist", "hist", []float64{1, 2})
	h.Observe(1)
	h.Observe(5)
	v := r.CounterVec("snap_vec_total", "vec", "kind")
	v.WithCounter("a").Add(3)

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["snap_total"].(float64) != 5 {
		t.Errorf("snap_total = %v", back["snap_total"])
	}
	hist := back["snap_hist"].(map[string]any)
	if hist["count"].(float64) != 2 || hist["sum"].(float64) != 6 {
		t.Errorf("snap_hist = %v", hist)
	}
	if back["snap_vec_total"].(map[string]any)["a"].(float64) != 3 {
		t.Errorf("snap_vec_total = %v", back["snap_vec_total"])
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	for name, fn := range map[string]func(*Registry){
		"camelCase name": func(r *Registry) { r.Counter("camelCase", "x") },
		"empty help":     func(r *Registry) { r.Counter("ok_total", "") },
		"duplicate":      func(r *Registry) { r.Counter("dup_total", "x"); r.Counter("dup_total", "x") },
		"bad label":      func(r *Registry) { r.CounterVec("v_total", "x", "Kind") },
		"bad buckets":    func(r *Registry) { r.Histogram("h_total", "x", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn(NewRegistry())
		}()
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	h := r.Histogram("conc_hist", "x", ExpBuckets(64))
	v := r.CounterVec("conc_vec_total", "x", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
				v.WithCounter(fmt.Sprintf("k%d", w%4)).Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		r.Snapshot()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("conc_total = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("conc_hist count = %d, want 8000", h.Count())
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"missing HELP": "# TYPE x_total counter\nx_total 1\n",
		"missing TYPE": "# HELP x_total help\nx_total 1\n",
		"camelCase":    "# HELP xTotal help\n# TYPE xTotal counter\nxTotal 1\n",
		"bad sample":   "# HELP x_total help\n# TYPE x_total counter\nx_total\n",
	}
	for name, src := range cases {
		problems, err := Lint(strings.NewReader(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(problems) == 0 {
			t.Errorf("%s: lint found no problems in %q", name, src)
		}
	}
	// High cardinality.
	var sb strings.Builder
	sb.WriteString("# HELP big_total help\n# TYPE big_total counter\n")
	for i := 0; i < MaxChildren+1; i++ {
		fmt.Fprintf(&sb, "big_total{k=\"v%d\"} 1\n", i)
	}
	problems, err := Lint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 {
		t.Error("lint missed high-cardinality label")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(8)
	want := []float64{0, 1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets(8) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets(8) = %v, want %v", got, want)
		}
	}
}
