// Command promlint lints a Prometheus text exposition read from stdin
// against the repo's rules (HELP/TYPE present, snake_case names, no
// high-cardinality labels). CI pipes a scrape of the server's /metrics
// endpoint through it; exit status 1 means violations were found.
//
//	curl -fsS http://127.0.0.1:7745/metrics | go run ./internal/metrics/promlint
package main

import (
	"fmt"
	"os"

	"oblidb/internal/metrics"
)

func main() {
	problems, err := metrics.Lint(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d violation(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("promlint: exposition clean")
}
