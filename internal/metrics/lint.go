package metrics

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// Lint checks a Prometheus text exposition for the rules this repo
// enforces in CI:
//
//   - every metric family has a # HELP and a # TYPE line before its
//     first sample;
//   - metric and label names are snake_case ([a-z][a-z0-9_]*);
//   - no family exceeds MaxChildren label values (the registry folds
//     overflow into OverflowLabel, so a violation means someone bypassed
//     it — high-cardinality labels are an operational and leakage
//     hazard);
//   - sample lines parse (name, optional {label="value"}, value).
//
// It returns one message per violation; an empty slice means the
// exposition is clean.
func Lint(r io.Reader) ([]string, error) {
	var problems []string
	help := make(map[string]bool)
	typed := make(map[string]bool)
	cardinality := make(map[string]map[string]bool)

	sampleRe := regexp.MustCompile(`^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
	labelRe := regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"`)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, _ := strings.Cut(rest, " ")
			if strings.TrimSpace(text) == "" {
				problems = append(problems, fmt.Sprintf("line %d: empty HELP text for %q", n, name))
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, _ := strings.Cut(rest, " ")
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, fmt.Sprintf("line %d: unparsable sample %q", n, line))
			continue
		}
		name := m[1]
		// Histogram series carry their family's HELP/TYPE.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && (help[b] || typed[b]) {
				base = b
				break
			}
		}
		if !nameRe.MatchString(name) {
			problems = append(problems, fmt.Sprintf("line %d: metric %q is not snake_case", n, name))
		}
		if !help[base] {
			problems = append(problems, fmt.Sprintf("line %d: metric %q has no # HELP", n, base))
			help[base] = true // report once
		}
		if !typed[base] {
			problems = append(problems, fmt.Sprintf("line %d: metric %q has no # TYPE", n, base))
			typed[base] = true
		}
		if m[2] != "" {
			for _, lm := range labelRe.FindAllStringSubmatch(m[2], -1) {
				key, val := lm[1], lm[2]
				if key == "le" {
					continue // histogram bucket bound, unbounded by design
				}
				if !nameRe.MatchString(key) {
					problems = append(problems, fmt.Sprintf("line %d: label %q is not snake_case", n, key))
				}
				seen := cardinality[base+"/"+key]
				if seen == nil {
					seen = make(map[string]bool)
					cardinality[base+"/"+key] = seen
				}
				seen[val] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return problems, err
	}
	for _, famLabel := range sortedKeys(cardinality) {
		if vals := cardinality[famLabel]; len(vals) > MaxChildren {
			problems = append(problems, fmt.Sprintf(
				"family/label %s has %d label values (max %d)", famLabel, len(vals), MaxChildren))
		}
	}
	return problems, nil
}
