// Package metrics is ObliDB's dependency-free telemetry registry:
// atomic counters, gauges, and fixed-bucket histograms with Prometheus
// text exposition and an expvar-style JSON snapshot.
//
// Every metric registered here is published to the untrusted host (the
// debug listener serves /metrics over plain HTTP), so the registry is
// leakage-audited by construction: a metric may be a function of public
// quantities only — statement shapes, table sizes and geometry, the
// epoch schedule, algorithm picks (conceded plan leakage, §2.3 of the
// paper) — never of data values or query parameters. DESIGN.md §13
// argues this per metric, and the server's obliviousness tests pin it:
// two workloads with identical statement shapes and epoch schedules but
// different data values must produce byte-identical expositions, which
// is also why WriteText is fully deterministic (registration order for
// families, sorted label values within one).
//
// Durations are never exported at wall-clock resolution. Latency
// histograms observe epoch-quantized values (whole multiples of the
// epoch interval), so the exported buckets are a function of the epoch
// schedule, not of hardware jitter or data-dependent micro-timing.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MaxChildren caps the number of label values one labeled family may
// hold. Labels here are closed sets (statement kinds, frame types,
// algorithm names, block geometries); anything past the cap folds into
// the "other" child rather than growing without bound — high-cardinality
// labels are both an operational hazard and a leakage hazard (a label
// per user-controlled string would republish that string).
const MaxChildren = 32

// OverflowLabel is the label value that absorbs children past
// MaxChildren.
const OverflowLabel = "other"

var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// kind is a metric family's type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. The
// bucket bounds are fixed at registration; Observe is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // observations are quantized, so the sum is shape-determined too
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Buckets returns the cumulative per-bucket counts, one per bound plus
// the final +Inf bucket (which equals Count).
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	out[len(h.bounds)] = h.count.Load()
	return out
}

// ExpBuckets returns histogram bounds {0, 1, 2, 4, ..., 2^k} with the
// last bound ≥ max — the fixed epoch-quantized grid latency histograms
// use. The bounds depend only on public configuration (the epoch size
// or a constant), never on observations.
func ExpBuckets(max int) []float64 {
	bounds := []float64{0}
	for b := 1; ; b *= 2 {
		bounds = append(bounds, float64(b))
		if b >= max {
			return bounds
		}
	}
}

// family is one named metric with its children (one for unlabeled
// metrics, one per label value for labeled ones).
type family struct {
	name, help string
	kind       kind
	label      string // "" for unlabeled
	bounds     []float64

	mu       sync.Mutex
	children map[string]any // label value → *Counter | *Gauge | *Histogram

	// Collected families are read through fn at exposition time instead
	// of holding registered children; the value type depends on kind.
	fnCounter    func() uint64
	fnGauge      func() float64
	fnCounterVec func() map[string]uint64
	fnGaugeVec   func() map[string]float64
}

// Registry holds metric families and renders them deterministically.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on invalid or duplicate names —
// metric registration is programmer-controlled startup code, and a
// typo'd catalog should fail loudly, not scrape quietly.
func (r *Registry) register(f *family) *family {
	if !nameRe.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q (want snake_case)", f.name))
	}
	if f.label != "" && !nameRe.MatchString(f.label) {
		panic(fmt.Sprintf("metrics: invalid label name %q (want snake_case)", f.label))
	}
	if f.help == "" {
		panic(fmt.Sprintf("metrics: metric %q registered without help text", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter,
		children: map[string]any{"": c}})
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge,
		children: map[string]any{"": g}})
	return g
}

// Histogram registers a histogram with the given ascending bucket upper
// bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, kind: kindHistogram, bounds: bounds,
		children: map[string]any{"": h}})
	return h
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Vec is a labeled family of metrics sharing one name; With returns the
// child for a label value, creating it on first use (capped at
// MaxChildren, folding the excess into OverflowLabel).
type Vec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *Vec {
	return &Vec{r.register(&family{name: name, help: help, kind: kindCounter,
		label: label, children: make(map[string]any)})}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *Vec {
	return &Vec{r.register(&family{name: name, help: help, kind: kindHistogram,
		label: label, bounds: bounds, children: make(map[string]any)})}
}

// WithCounter returns the counter child for a label value.
func (v *Vec) WithCounter(label string) *Counter {
	return v.child(label, func() any { return &Counter{} }).(*Counter)
}

// WithHistogram returns the histogram child for a label value.
func (v *Vec) WithHistogram(label string) *Histogram {
	return v.child(label, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

func (v *Vec) child(label string, mk func() any) any {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[label]; ok {
		return c
	}
	// Reserve one slot for the overflow child so the family never
	// exposes more than MaxChildren label values in total.
	if len(v.f.children) >= MaxChildren-1 {
		if c, ok := v.f.children[OverflowLabel]; ok {
			return c
		}
		label = OverflowLabel
	}
	c := mk()
	v.f.children[label] = c
	return c
}

// CounterFunc registers a counter whose value is collected at
// exposition time. Use it to publish counters owned by another layer
// (the enclave's I/O tallies, the plan cache) without double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&family{name: name, help: help, kind: kindCounter, fnCounter: fn})
}

// GaugeFunc registers a gauge collected at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fnGauge: fn})
}

// CounterVecFunc registers a labeled counter family collected at
// exposition time; fn returns the current value per label.
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]uint64) {
	r.register(&family{name: name, help: help, kind: kindCounter, label: label, fnCounterVec: fn})
}

// GaugeVecFunc registers a labeled gauge family collected at exposition
// time.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, label: label, fnGaugeVec: fn})
}

// fmtFloat renders a float the way both expositions use: integral
// values without an exponent or trailing zeros, so counters read as
// counts.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedLabels returns the family's label values in exposition order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the registry in the Prometheus text exposition
// format. Output is deterministic: families in registration order,
// label values sorted, every family preceded by # HELP and # TYPE.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var sb strings.Builder
	for _, f := range fams {
		sb.WriteString("# HELP ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(strings.ReplaceAll(f.help, "\n", " "))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(f.kind.String())
		sb.WriteByte('\n')
		f.writeText(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) writeText(sb *strings.Builder) {
	line := func(suffix, labels string, val string) {
		sb.WriteString(f.name)
		sb.WriteString(suffix)
		sb.WriteString(labels)
		sb.WriteByte(' ')
		sb.WriteString(val)
		sb.WriteByte('\n')
	}
	labelFor := func(value string) string {
		if f.label == "" {
			return ""
		}
		return `{` + f.label + `="` + value + `"}`
	}
	switch {
	case f.fnCounter != nil:
		line("", "", strconv.FormatUint(f.fnCounter(), 10))
	case f.fnGauge != nil:
		line("", "", fmtFloat(f.fnGauge()))
	case f.fnCounterVec != nil:
		vals := f.fnCounterVec()
		for _, k := range sortedKeys(vals) {
			line("", labelFor(k), strconv.FormatUint(vals[k], 10))
		}
	case f.fnGaugeVec != nil:
		vals := f.fnGaugeVec()
		for _, k := range sortedKeys(vals) {
			line("", labelFor(k), fmtFloat(vals[k]))
		}
	default:
		f.mu.Lock()
		keys := sortedKeys(f.children)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			switch c := children[i].(type) {
			case *Counter:
				line("", labelFor(k), strconv.FormatUint(c.Value(), 10))
			case *Gauge:
				line("", labelFor(k), fmtFloat(c.Value()))
			case *Histogram:
				cum := c.Buckets()
				for bi, b := range f.bounds {
					lab := `{le="` + fmtFloat(b) + `"}`
					if f.label != "" {
						lab = `{` + f.label + `="` + k + `",le="` + fmtFloat(b) + `"}`
					}
					line("_bucket", lab, strconv.FormatUint(cum[bi], 10))
				}
				lab := `{le="+Inf"}`
				if f.label != "" {
					lab = `{` + f.label + `="` + k + `",le="+Inf"}`
				}
				line("_bucket", lab, strconv.FormatUint(cum[len(cum)-1], 10))
				line("_sum", labelFor(k), fmtFloat(c.sum.Value()))
				line("_count", labelFor(k), strconv.FormatUint(c.Count(), 10))
			}
		}
	}
}

// Snapshot returns the registry as a JSON-marshalable tree: metric name
// → value (or label → value, or histogram object). The same snapshot
// backs /debug/vars, the wire.Stats v3 extension, and the bench
// trajectory artifact.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		out[f.name] = f.snapshot()
	}
	return out
}

func (f *family) snapshot() any {
	switch {
	case f.fnCounter != nil:
		return f.fnCounter()
	case f.fnGauge != nil:
		return f.fnGauge()
	case f.fnCounterVec != nil:
		vals := f.fnCounterVec()
		m := make(map[string]any, len(vals))
		for k, v := range vals {
			m[k] = v
		}
		return m
	case f.fnGaugeVec != nil:
		vals := f.fnGaugeVec()
		m := make(map[string]any, len(vals))
		for k, v := range vals {
			m[k] = v
		}
		return m
	}
	f.mu.Lock()
	keys := sortedKeys(f.children)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	one := func(c any) any {
		switch c := c.(type) {
		case *Counter:
			return c.Value()
		case *Gauge:
			return c.Value()
		case *Histogram:
			cum := c.Buckets()
			buckets := make(map[string]uint64, len(cum))
			for i, b := range f.bounds {
				buckets[fmtFloat(b)] = cum[i]
			}
			buckets["+Inf"] = cum[len(cum)-1]
			return map[string]any{
				"count": c.Count(), "sum": c.sum.Value(), "buckets": buckets,
			}
		}
		return nil
	}
	if f.label == "" {
		if len(children) == 0 {
			return nil
		}
		return one(children[0])
	}
	m := make(map[string]any, len(keys))
	for i, k := range keys {
		m[k] = one(children[i])
	}
	return m
}

// WriteJSON renders the snapshot as indented JSON (the /debug/vars
// body).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
