package sql

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/crypt"
	"oblidb/internal/table"
	"oblidb/internal/wal"
)

func txPrep(t *testing.T, x *Executor, q string) *Prepared {
	t.Helper()
	p, err := x.Prepare(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return p
}

func countRows(t *testing.T, x *Executor, q string) int {
	t.Helper()
	return len(mustExec(t, x, q).Rows)
}

func TestTxControlParses(t *testing.T) {
	cases := map[string]string{
		"BEGIN":                "BEGIN",
		"begin transaction":    "BEGIN",
		"BEGIN WORK":           "BEGIN",
		"COMMIT":               "COMMIT",
		"commit work":          "COMMIT",
		"ROLLBACK":             "ROLLBACK",
		"ROLLBACK TRANSACTION": "ROLLBACK",
	}
	for src, want := range cases {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := stmt.(fmt.Stringer).String(); got != want {
			t.Fatalf("%s: String() = %q, want %q", src, got, want)
		}
		if !IsTxControl(stmt) {
			t.Fatalf("%s: not classified as tx control", src)
		}
	}
	if _, err := Parse("BEGIN EXTRA"); err == nil {
		t.Fatal("trailing token after BEGIN accepted")
	}
}

func TestTxControlClassifiers(t *testing.T) {
	b, _ := Parse("BEGIN")
	c, _ := Parse("COMMIT")
	r, _ := Parse("ROLLBACK")
	ins, _ := Parse("INSERT INTO t VALUES (1)")
	ddl, _ := Parse("CREATE TABLE t (a INTEGER)")
	sel, _ := Parse("SELECT * FROM t")
	if !IsBegin(b) || !IsCommit(c) || !IsRollback(r) {
		t.Fatal("tx-control classifiers misfire")
	}
	if IsTxControl(ins) || IsTxControl(sel) {
		t.Fatal("non-control statements classified as tx control")
	}
	if !IsWrite(ins) || IsWrite(sel) || IsWrite(ddl) {
		t.Fatal("IsWrite misclassifies")
	}
	if !IsDDL(ddl) || IsDDL(ins) {
		t.Fatal("IsDDL misclassifies")
	}
}

func TestTxControlNeedsSession(t *testing.T) {
	x := newExec(t)
	for _, q := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if _, err := x.Execute(q); err == nil ||
			!strings.Contains(err.Error(), "transaction-aware") {
			t.Fatalf("%s executed statement-wise: %v", q, err)
		}
	}
}

func TestTxStateLifecycle(t *testing.T) {
	var st TxState
	if st.Active() {
		t.Fatal("zero state active")
	}
	if err := st.Rollback(); err == nil {
		t.Fatal("rollback without begin succeeded")
	}
	if _, err := st.Take(); err == nil {
		t.Fatal("take without begin succeeded")
	}
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st.Begin(); err == nil {
		t.Fatal("nested begin succeeded")
	}
	x := newExec(t)
	seed(t, x)
	ins := txPrep(t, x, "INSERT INTO emp VALUES (7, 'gus', 'eng', 95)")
	if err := st.Buffer(ins, nil); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 1 {
		t.Fatalf("pending = %d", st.Pending())
	}
	ddl := txPrep(t, x, "CREATE TABLE other (a INTEGER)")
	if err := st.Buffer(ddl, nil); err == nil {
		t.Fatal("DDL buffered")
	}
	sel := txPrep(t, x, "SELECT * FROM emp")
	if err := st.Buffer(sel, nil); err == nil {
		t.Fatal("SELECT buffered")
	}
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if st.Active() || st.Pending() != 0 {
		t.Fatal("rollback left state open")
	}
}

func TestExecTxCommitsBatchAtomically(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	var st TxState
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	ins := txPrep(t, x, "INSERT INTO emp VALUES (?, ?, 'eng', ?)")
	upd := txPrep(t, x, "UPDATE emp SET salary = salary + ? WHERE dept = 'eng'")
	del := txPrep(t, x, "DELETE FROM emp WHERE id = ?")
	for _, it := range []struct {
		p    *Prepared
		args []table.Value
	}{
		{ins, []table.Value{table.Int(7), table.Str("gus"), table.Int(95)}},
		{upd, []table.Value{table.Int(10)}},
		{del, []table.Value{table.Int(5)}},
	} {
		if err := st.Buffer(it.p, it.args); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing applied while buffered.
	if n := countRows(t, x, "SELECT * FROM emp"); n != 6 {
		t.Fatalf("buffered writes applied early: %d rows", n)
	}
	items, err := st.Take()
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.ExecTx(items)
	if err != nil {
		t.Fatal(err)
	}
	// 1 insert + 4 updates (eng now includes gus) + 1 delete.
	if got := res.Rows[0][0].AsInt(); got != 6 {
		t.Fatalf("total affected = %d, want 6", got)
	}
	if n := countRows(t, x, "SELECT * FROM emp"); n != 6 {
		t.Fatalf("%d rows after commit, want 6", n)
	}
	if n := countRows(t, x, "SELECT * FROM emp WHERE salary = 130"); n != 1 {
		t.Fatal("update in batch not applied")
	}
	if n := countRows(t, x, "SELECT * FROM emp WHERE id = 5"); n != 0 {
		t.Fatal("delete in batch not applied")
	}
}

func TestExecTxFailureRollsBackWholeBatch(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	var st TxState
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	good := txPrep(t, x, "INSERT INTO emp VALUES (8, 'hana', 'eng', 90)")
	// A post-image too wide for name VARCHAR(16) fails mid-batch.
	bad := txPrep(t, x, "UPDATE emp SET name = 'this name is far too long for the column' WHERE id = 1")
	if err := st.Buffer(good, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Buffer(bad, nil); err != nil {
		t.Fatal(err)
	}
	items, err := st.Take()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.ExecTx(items); err == nil {
		t.Fatal("batch with invalid statement committed")
	}
	// The earlier insert must have been undone with it.
	if n := countRows(t, x, "SELECT * FROM emp WHERE id = 8"); n != 0 {
		t.Fatal("failed transaction left its first statement applied")
	}
	if n := countRows(t, x, "SELECT * FROM emp"); n != 6 {
		t.Fatalf("%d rows after failed tx, want 6", n)
	}
}

func TestExecTxArityChecked(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	ins := txPrep(t, x, "INSERT INTO emp VALUES (?, ?, ?, ?)")
	if _, err := x.ExecTx([]TxItem{{Prep: ins, Args: []table.Value{table.Int(1)}}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// TestTxDurability is the cross-layer contract: a committed transaction
// survives a crash as one unit, an uncommitted one vanishes as one unit.
func TestTxDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	db := core.MustOpen(core.Config{})
	l, err := wal.Open(path, key, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	x := New(db)
	seed(t, x)

	// Committed transaction.
	var st TxState
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := st.Buffer(txPrep(t, x, "INSERT INTO emp VALUES (7, 'gus', 'eng', 95)"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Buffer(txPrep(t, x, "DELETE FROM emp WHERE id = 1"), nil); err != nil {
		t.Fatal(err)
	}
	items, err := st.Take()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.ExecTx(items); err != nil {
		t.Fatal(err)
	}

	// A second transaction is buffered but never committed: the "crash"
	// below happens with it open, so no trace of it may survive.
	var open TxState
	if err := open.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := open.Buffer(txPrep(t, x, "INSERT INTO emp VALUES (9, 'ida', 'hr', 60)"), nil); err != nil {
		t.Fatal(err)
	}
	l.Close() // crash: engine abandoned, open transaction lost

	l2, err := wal.Open(path, key, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recovered := core.MustOpen(core.Config{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	x2 := New(recovered)
	if n := countRows(t, x2, "SELECT * FROM emp WHERE id = 7"); n != 1 {
		t.Fatal("committed transaction's insert lost in recovery")
	}
	if n := countRows(t, x2, "SELECT * FROM emp WHERE id = 1"); n != 0 {
		t.Fatal("committed transaction's delete lost in recovery")
	}
	if n := countRows(t, x2, "SELECT * FROM emp WHERE id = 9"); n != 0 {
		t.Fatal("uncommitted transaction leaked into recovery")
	}
	if n := countRows(t, x2, "SELECT * FROM emp"); n != 6 {
		t.Fatalf("%d rows after recovery, want 6", n)
	}
}

func TestExplainTx(t *testing.T) {
	x := newExec(t)
	res := mustExec(t, x, "EXPLAIN BEGIN")
	if len(res.Rows) == 0 {
		t.Fatal("EXPLAIN BEGIN returned nothing")
	}
	text := ""
	for _, r := range res.Rows {
		text += r[0].AsString() + "\n"
	}
	if !strings.Contains(strings.ToLower(text), "begin") {
		t.Fatalf("EXPLAIN BEGIN output: %s", text)
	}
}
