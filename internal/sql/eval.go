package sql

import (
	"fmt"
	"strings"
	"sync"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// resolver maps column references to row indices. For joins the right
// table's duplicate-named columns carry the "r_" prefix the engine's
// JoinedSchema assigns.
type resolver struct {
	schema *table.Schema
	// rightTable and leftTable are the join's source names ("" outside
	// joins); rightStart is the first right-side column index.
	leftTable, rightTable string
	rightStart            int
	// args are the bound parameter values ($1 = args[0]). They live
	// only here, inside the enclave's evaluator: placeholders are never
	// substituted into the AST, so argument values cannot reach the
	// planner, the key-range extraction, or the rendered statement.
	args []table.Value
}

func newResolver(s *table.Schema) *resolver { return &resolver{schema: s, rightStart: -1} }

// withArgs attaches bound parameter values to the resolver.
func (r *resolver) withArgs(args []table.Value) *resolver {
	r.args = args
	return r
}

func (r *resolver) resolve(c *ColumnRef) (int, error) {
	if c.Table != "" && r.rightStart >= 0 {
		// Qualified reference inside a join: search the matching side.
		if strings.EqualFold(c.Table, r.rightTable) {
			if i := r.schema.ColIndex("r_" + c.Column); i >= 0 {
				return i, nil
			}
			if i := r.schema.ColIndex(c.Column); i >= r.rightStart {
				return i, nil
			}
			return -1, fmt.Errorf("sql: no column %q in table %q", c.Column, c.Table)
		}
		if strings.EqualFold(c.Table, r.leftTable) {
			if i := r.schema.ColIndex(c.Column); i >= 0 && i < r.rightStart {
				return i, nil
			}
			return -1, fmt.Errorf("sql: no column %q in table %q", c.Column, c.Table)
		}
		return -1, fmt.Errorf("sql: unknown table qualifier %q", c.Table)
	}
	if i := r.schema.ColIndex(c.Column); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("sql: no column %q", c.Column)
}

// eval evaluates an expression against a row, inside the enclave.
func (r *resolver) eval(e Expr, row table.Row) (table.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Placeholder:
		if x.Index < 1 || x.Index > len(r.args) {
			return table.Value{}, fmt.Errorf("sql: parameter $%d not bound (%d argument(s) given)", x.Index, len(r.args))
		}
		return r.args[x.Index-1], nil
	case *ColumnRef:
		i, err := r.resolve(x)
		if err != nil {
			return table.Value{}, err
		}
		return row[i], nil
	case *Unary:
		v, err := r.eval(x.X, row)
		if err != nil {
			return table.Value{}, err
		}
		switch x.Op {
		case "NOT":
			return table.Bool(!truthy(v)), nil
		case "-":
			switch v.Kind {
			case table.KindInt:
				return table.Int(-v.AsInt()), nil
			case table.KindFloat:
				return table.Float(-v.AsFloat()), nil
			}
			return table.Value{}, fmt.Errorf("sql: cannot negate %s", v.Kind)
		}
	case *Binary:
		return r.evalBinary(x, row)
	case *Call:
		return r.evalCall(x, row)
	}
	return table.Value{}, fmt.Errorf("sql: cannot evaluate %T", e)
}

func truthy(v table.Value) bool {
	switch v.Kind {
	case table.KindBool, table.KindInt:
		return v.AsInt() != 0
	case table.KindFloat:
		return v.AsFloat() != 0
	case table.KindString:
		return v.AsString() != ""
	}
	return false
}

func (r *resolver) evalBinary(x *Binary, row table.Row) (table.Value, error) {
	switch x.Op {
	case "AND":
		l, err := r.eval(x.L, row)
		if err != nil {
			return table.Value{}, err
		}
		if !truthy(l) {
			return table.Bool(false), nil
		}
		rr, err := r.eval(x.R, row)
		if err != nil {
			return table.Value{}, err
		}
		return table.Bool(truthy(rr)), nil
	case "OR":
		l, err := r.eval(x.L, row)
		if err != nil {
			return table.Value{}, err
		}
		if truthy(l) {
			return table.Bool(true), nil
		}
		rr, err := r.eval(x.R, row)
		if err != nil {
			return table.Value{}, err
		}
		return table.Bool(truthy(rr)), nil
	}

	l, err := r.eval(x.L, row)
	if err != nil {
		return table.Value{}, err
	}
	rr, err := r.eval(x.R, row)
	if err != nil {
		return table.Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := table.Compare(l, rr)
		if err != nil {
			return table.Value{}, err
		}
		var out bool
		switch x.Op {
		case "=":
			out = c == 0
		case "<>":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return table.Bool(out), nil
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, rr)
	}
	return table.Value{}, fmt.Errorf("sql: unknown operator %q", x.Op)
}

func arith(op string, l, r table.Value) (table.Value, error) {
	if op == "+" && l.Kind == table.KindString && r.Kind == table.KindString {
		return table.Str(l.AsString() + r.AsString()), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return table.Value{}, fmt.Errorf("sql: %s needs numeric operands", op)
	}
	if l.Kind == table.KindInt && r.Kind == table.KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return table.Int(a + b), nil
		case "-":
			return table.Int(a - b), nil
		case "*":
			return table.Int(a * b), nil
		case "/":
			if b == 0 {
				return table.Value{}, fmt.Errorf("sql: division by zero")
			}
			return table.Int(a / b), nil
		case "%":
			if b == 0 {
				return table.Value{}, fmt.Errorf("sql: modulo by zero")
			}
			return table.Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return table.Float(a + b), nil
	case "-":
		return table.Float(a - b), nil
	case "*":
		return table.Float(a * b), nil
	case "/":
		if b == 0 {
			return table.Value{}, fmt.Errorf("sql: division by zero")
		}
		return table.Float(a / b), nil
	}
	return table.Value{}, fmt.Errorf("sql: %s not defined on floats", op)
}

func (r *resolver) evalCall(x *Call, row table.Row) (table.Value, error) {
	switch x.Name {
	case "SUBSTR", "SUBSTRING":
		if len(x.Args) != 3 {
			return table.Value{}, fmt.Errorf("sql: SUBSTR takes (string, start, length)")
		}
		s, err := r.eval(x.Args[0], row)
		if err != nil {
			return table.Value{}, err
		}
		start, err := r.eval(x.Args[1], row)
		if err != nil {
			return table.Value{}, err
		}
		length, err := r.eval(x.Args[2], row)
		if err != nil {
			return table.Value{}, err
		}
		if s.Kind != table.KindString {
			return table.Value{}, fmt.Errorf("sql: SUBSTR over %s", s.Kind)
		}
		str := s.AsString()
		from := int(start.AsInt()) - 1 // SQL is 1-based
		if from < 0 {
			from = 0
		}
		if from > len(str) {
			from = len(str)
		}
		to := from + int(length.AsInt())
		if to > len(str) {
			to = len(str)
		}
		if to < from {
			to = from
		}
		return table.Str(str[from:to]), nil
	case "LENGTH":
		if len(x.Args) != 1 {
			return table.Value{}, fmt.Errorf("sql: LENGTH takes one argument")
		}
		s, err := r.eval(x.Args[0], row)
		if err != nil {
			return table.Value{}, err
		}
		return table.Int(int64(len(s.AsString()))), nil
	}
	return table.Value{}, fmt.Errorf("sql: unknown function %q", x.Name)
}

// constEval evaluates an expression with no column references, binding
// placeholders from args.
func constEval(e Expr, args []table.Value) (table.Value, error) {
	r := newResolver(table.MustSchema(table.Column{Name: "_", Kind: table.KindInt})).withArgs(args)
	return r.eval(e, table.Row{table.Int(0)})
}

// pred compiles an expression into a table.Pred. Evaluation errors
// surface through errOut (checked after the operator completes) so the
// predicate signature stays simple. The error capture is mutex-guarded
// because partition-parallel operators evaluate one predicate from
// several workers at once; eval itself touches no shared state.
func (r *resolver) pred(e Expr, errOut *error) table.Pred {
	if e == nil {
		return table.All
	}
	var mu sync.Mutex
	return func(row table.Row) bool {
		v, err := r.eval(e, row)
		if err != nil {
			mu.Lock()
			if *errOut == nil {
				*errOut = err
			}
			mu.Unlock()
			return false
		}
		return truthy(v)
	}
}

// keyRange extracts an inclusive range on the indexed column from the
// conjunctive prefix of a WHERE clause — how the executor decides a query
// can "begin inside an ORAM at a point specified by an index lookup"
// (§4.1). Only top-level ANDs are examined; anything else stays in the
// residual predicate (which is always the full expression).
func keyRange(e Expr, keyCol string) *core.KeyRange {
	conjuncts := flattenAnd(e)
	var lo, hi *int64
	set := func(p **int64, v int64, pick func(a, b int64) int64) {
		if *p == nil {
			*p = &v
			return
		}
		nv := pick(**p, v)
		*p = &nv
	}
	maxI := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	minI := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if !ok {
			continue
		}
		col, lit, op, ok := normalizeCmp(b, keyCol)
		if !ok || col == nil {
			continue
		}
		switch op {
		case "=":
			set(&lo, lit, maxI)
			set(&hi, lit, minI)
		case ">":
			set(&lo, lit+1, maxI)
		case ">=":
			set(&lo, lit, maxI)
		case "<":
			set(&hi, lit-1, minI)
		case "<=":
			set(&hi, lit, minI)
		}
	}
	if lo == nil && hi == nil {
		return nil
	}
	r := &core.KeyRange{Lo: -1 << 63, Hi: 1<<63 - 1}
	if lo != nil {
		r.Lo = *lo
	}
	if hi != nil {
		r.Hi = *hi
	}
	return r
}

func flattenAnd(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

// normalizeCmp matches col OP intLiteral (either orientation) against the
// named key column.
func normalizeCmp(b *Binary, keyCol string) (*ColumnRef, int64, string, bool) {
	flip := map[string]string{"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
	if _, ok := flip[b.Op]; !ok {
		return nil, 0, "", false
	}
	if cr, ok := b.L.(*ColumnRef); ok && strings.EqualFold(cr.Column, keyCol) {
		if lit, ok := b.R.(*Literal); ok && lit.Val.Kind == table.KindInt {
			return cr, lit.Val.AsInt(), b.Op, true
		}
	}
	if cr, ok := b.R.(*ColumnRef); ok && strings.EqualFold(cr.Column, keyCol) {
		if lit, ok := b.L.(*Literal); ok && lit.Val.Kind == table.KindInt {
			return cr, lit.Val.AsInt(), flip[b.Op], true
		}
	}
	return nil, 0, "", false
}

// columnsIn collects the unqualified tables a predicate references:
// whether every ColumnRef resolves within the given schema.
func exprOnlyUses(e Expr, s *table.Schema, tableName string) bool {
	ok := true
	var walk func(Expr)
	walk = func(e Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *ColumnRef:
			if x.Table != "" && !strings.EqualFold(x.Table, tableName) {
				ok = false
				return
			}
			if s.ColIndex(x.Column) < 0 {
				ok = false
			}
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}
