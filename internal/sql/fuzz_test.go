package sql

import (
	"fmt"
	"testing"
)

// FuzzParser asserts two properties over arbitrary input: the parser
// never panics (it must reject, not crash — statements arrive off the
// network), and parsing is a fixed point through rendering: any
// statement that parses renders to SQL that reparses to a statement
// rendering identically.
func FuzzParser(f *testing.F) {
	for _, seed := range []string{
		"CREATE TABLE t (id INTEGER, name VARCHAR(16), f FLOAT, b BOOLEAN) INDEX ON id CAPACITY = 64 OBLIVIOUS INSERTS",
		"CREATE TABLE t (k INTEGER) STORAGE = INDEXED INDEX ON k",
		"INSERT INTO t VALUES (1, 'al''ice', 2.5, TRUE), (-2, 'bob', 0.0, FALSE)",
		"SELECT * FROM t",
		"SELECT a, b AS c FROM t WHERE a > 1 AND NOT b = 'x' FORCE Hash",
		"SELECT COUNT(*), SUM(v) FROM t WHERE k >= 10 GROUP BY SUBSTR(name, 1, 3)",
		"SELECT * FROM l JOIN r ON l.k = r.fk WHERE l.v < 9",
		"UPDATE t SET v = v + 1, w = 'q' WHERE k % 2 = 0",
		"DELETE FROM t WHERE NOT (a OR b)",
		"DROP TABLE t;",
		"SELECT 1.5 + -2 * (3 / 4) FROM t",
		"-- comment\nSELECT * FROM t",
		"SELECT SUM() FROM t",
		"INSERT INTO t VALUES (0.0)",
		"'",
		"SELECT * FROM t WHERE id = ?",
		"SELECT * FROM t WHERE id = $1 AND v < $2",
		"SELECT * FROM t WHERE id = $1 AND v < ? OR w = ?",
		"SELECT * FROM t WHERE id = $9",
		"INSERT INTO t VALUES (?, $2, 'x'), ($1, ?, ?)",
		"UPDATE t SET v = $1 WHERE k = $2",
		"DELETE FROM t WHERE k = ? AND v <> $1",
		"SELECT * FROM t WHERE id = $0",
		"SELECT * FROM t WHERE id = $99999999999999999999",
		"SELECT * FROM t WHERE id = $",
		"SELECT * FROM t WHERE v > 1 ORDER BY k DESC LIMIT 10",
		"SELECT k FROM t ORDER BY t.k ASC",
		"SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v LIMIT 3",
		"SELECT * FROM t ORDER BY k LIMIT 0",
		"SELECT * FROM t LIMIT ?",
		"SELECT * FROM t LIMIT $1",
		"SELECT * FROM t LIMIT -1",
		"EXPLAIN SELECT * FROM t WHERE id = $1 ORDER BY k LIMIT 3",
		"EXPLAIN UPDATE t SET v = $1 WHERE k = 7",
		"EXPLAIN EXPLAIN SELECT * FROM t",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src) // must never panic
		if err != nil {
			return
		}
		s1 := stmt.(fmt.Stringer).String()
		stmt2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendering of %q does not reparse: %q: %v", src, s1, err)
		}
		if s2 := stmt2.(fmt.Stringer).String(); s1 != s2 {
			t.Fatalf("parse→String not a fixed point for %q:\n  first:  %q\n  second: %q", src, s1, s2)
		}
	})
}
