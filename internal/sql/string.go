package sql

import (
	"fmt"
	"strconv"
	"strings"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// Statement and expression rendering. The invariant — enforced by
// FuzzParser — is that String() of any parsed statement reparses to a
// statement that renders identically: parse → String → parse is a
// fixed point. Rendering is fully parenthesized, so no precedence
// reasoning is needed.

// String renders the statement as parseable SQL.
func (s *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(s.Name)
	sb.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		switch c.Kind {
		case table.KindInt:
			sb.WriteString("INTEGER")
		case table.KindFloat:
			sb.WriteString("FLOAT")
		case table.KindBool:
			sb.WriteString("BOOLEAN")
		default:
			fmt.Fprintf(&sb, "VARCHAR(%d)", c.Width)
		}
	}
	sb.WriteString(")")
	if s.Kind != core.KindFlat {
		sb.WriteString(" STORAGE = ")
		sb.WriteString(strings.ToUpper(s.Kind.String()))
	}
	if s.IndexCol != "" {
		if s.UsingIndex {
			sb.WriteString(" USING INDEX(")
			sb.WriteString(s.IndexCol)
			sb.WriteString(")")
		} else {
			sb.WriteString(" INDEX ON ")
			sb.WriteString(s.IndexCol)
		}
	}
	if s.Capacity != 0 {
		fmt.Fprintf(&sb, " CAPACITY = %d", s.Capacity)
	}
	if s.ObliviousI {
		sb.WriteString(" OBLIVIOUS INSERTS")
	}
	return sb.String()
}

// String renders the statement as parseable SQL.
func (s *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(s.Name)
	sb.WriteString(" VALUES ")
	for i, row := range s.Values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(exprSQL(e))
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// String renders the statement as parseable SQL.
func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Star || len(s.Items) == 0 {
		sb.WriteByte('*')
	} else {
		for i, item := range s.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(exprSQL(item.Expr))
			if item.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(item.Alias)
			}
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From)
	if s.Join != nil {
		sb.WriteString(" JOIN ")
		sb.WriteString(s.Join.Right)
		sb.WriteString(" ON ")
		sb.WriteString(columnRefSQL(s.Join.LeftCol))
		sb.WriteString(" = ")
		sb.WriteString(columnRefSQL(s.Join.RightCol))
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(exprSQL(s.Where))
	}
	if s.GroupBy != nil {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(exprSQL(s.GroupBy))
	}
	if s.Order != nil {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(columnRefSQL(s.Order.Col))
		if s.Order.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *s.Limit)
	}
	if s.Force != nil {
		sb.WriteString(" FORCE ")
		sb.WriteString(s.Force.String())
	}
	return sb.String()
}

// String renders the statement as parseable SQL.
func (s *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(s.Name)
	sb.WriteString(" SET ")
	for i, set := range s.Sets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(set.Column)
		sb.WriteString(" = ")
		sb.WriteString(exprSQL(set.Value))
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(exprSQL(s.Where))
	}
	return sb.String()
}

// String renders the statement as parseable SQL.
func (s *Delete) String() string {
	out := "DELETE FROM " + s.Name
	if s.Where != nil {
		out += " WHERE " + exprSQL(s.Where)
	}
	return out
}

// String renders the statement as parseable SQL.
func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

func (s *Begin) String() string { return "BEGIN" }

func (s *Commit) String() string { return "COMMIT" }

func (s *Rollback) String() string { return "ROLLBACK" }

// String renders the statement as parseable SQL.
func (s *Explain) String() string {
	return "EXPLAIN " + s.Stmt.(fmt.Stringer).String()
}

// exprSQL renders an expression, fully parenthesized.
func exprSQL(e Expr) string {
	switch x := e.(type) {
	case *Literal:
		return valueSQL(x.Val)
	case *ColumnRef:
		return columnRefSQL(x)
	case *Binary:
		return "(" + exprSQL(x.L) + " " + x.Op + " " + exprSQL(x.R) + ")"
	case *Unary:
		if x.Op == "NOT" {
			return "NOT (" + exprSQL(x.X) + ")"
		}
		return x.Op + "(" + exprSQL(x.X) + ")"
	case *Call:
		if len(x.Args) == 0 {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprSQL(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *Placeholder:
		// Always the $n form: String() is the placeholder-normalized
		// statement shape, so ? and $1 render identically and the plan
		// cache keys on shape, not spelling.
		return "$" + strconv.Itoa(x.Index)
	}
	return fmt.Sprintf("/*?%T*/", e)
}

func columnRefSQL(c *ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// valueSQL renders a literal so that it reparses to the same value AND
// the same kind: floats always carry a decimal point (the lexer has no
// exponent syntax), strings double their quotes.
func valueSQL(v table.Value) string {
	switch v.Kind {
	case table.KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case table.KindFloat:
		s := strconv.FormatFloat(v.AsFloat(), 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case table.KindBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	}
}
