package sql

import (
	"fmt"

	"oblidb/internal/core"
	"oblidb/internal/plan"
)

// This file is the plan compiler: it lowers a parsed statement into the
// physical plan IR of internal/plan. A compiled plan is pure statement
// shape plus public catalog metadata — expression structure, table
// names, literal-derived key ranges, the public LIMIT — and never a
// bound argument value, so the shape-keyed cache stores compiled plans
// and re-executions skip both parsing and planning.

// rangeFor extracts the key range a WHERE clause implies for t's
// indexed column. It is the single key-range extraction point (the
// SELECT, UPDATE, and DELETE compilers all route through it); only
// literal comparisons contribute — placeholders never narrow a range,
// so the range is part of the statement shape.
func rangeFor(t *core.Table, where Expr) *core.KeyRange {
	if t == nil || t.KeyColumn() < 0 || where == nil {
		return nil
	}
	return keyRange(where, t.Schema().Col(t.KeyColumn()).Name)
}

// planRange converts an engine key range to the IR's representation.
func planRange(k *core.KeyRange) *plan.KeyRange {
	if k == nil {
		return nil
	}
	return &plan.KeyRange{Lo: k.Lo, Hi: k.Hi}
}

// condSQL renders a condition for EXPLAIN ("" for nil).
func condSQL(e Expr) string {
	if e == nil {
		return ""
	}
	return exprSQL(e)
}

// compile lowers one statement into a plan rooted at a Collect,
// Aggregate, or DML node. DDL (CREATE/DROP) and EXPLAIN are catalog
// operations the executor handles directly.
func (x *Executor) compile(stmt Statement) (plan.Node, error) {
	switch s := stmt.(type) {
	case *Select:
		return x.compileSelect(s)
	case *Insert:
		rows := make([][]plan.Expr, len(s.Values))
		for i, exprs := range s.Values {
			row := make([]plan.Expr, len(exprs))
			for j, e := range exprs {
				row[j] = e
			}
			rows[i] = row
		}
		return &plan.Insert{Table: s.Name, Rows: rows}, nil
	case *Update:
		t, err := x.db.Table(s.Name)
		if err != nil {
			return nil, err
		}
		sets := make([]plan.SetExpr, len(s.Sets))
		for i, set := range s.Sets {
			if t.Schema().ColIndex(set.Column) < 0 {
				return nil, fmt.Errorf("sql: no column %q", set.Column)
			}
			sets[i] = plan.SetExpr{Column: set.Column, Value: set.Value, SQL: exprSQL(set.Value)}
		}
		return &plan.Update{
			Table: s.Name, Sets: sets,
			Cond: exprOrNil(s.Where), CondSQL: condSQL(s.Where),
			Key: planRange(rangeFor(t, s.Where)), KeyCol: keyColName(t),
		}, nil
	case *Delete:
		t, err := x.db.Table(s.Name)
		if err != nil {
			return nil, err
		}
		return &plan.Delete{
			Table: s.Name,
			Cond:  exprOrNil(s.Where), CondSQL: condSQL(s.Where),
			Key: planRange(rangeFor(t, s.Where)), KeyCol: keyColName(t),
		}, nil
	case *Begin:
		return &plan.Tx{Kind: plan.TxBegin}, nil
	case *Commit:
		return &plan.Tx{Kind: plan.TxCommit}, nil
	case *Rollback:
		return &plan.Tx{Kind: plan.TxRollback}, nil
	}
	return nil, fmt.Errorf("sql: cannot compile %T into a plan", stmt)
}

// exprOrNil keeps a nil sql.Expr a nil plan.Expr (a typed nil inside an
// interface would defeat the interpreter's nil checks).
func exprOrNil(e Expr) plan.Expr {
	if e == nil {
		return nil
	}
	return e
}

func keyColName(t *core.Table) string {
	if t.KeyColumn() < 0 {
		return ""
	}
	return t.Schema().Col(t.KeyColumn()).Name
}

// compileSource picks the access path for a table under a WHERE clause:
// an IndexScan when the table has an index and the literal conjuncts
// bound its key column, a full Scan otherwise.
func compileSource(t *core.Table, name string, where Expr) plan.Node {
	if key := rangeFor(t, where); key != nil {
		return &plan.IndexScan{Table: name, KeyCol: keyColName(t), Range: plan.KeyRange{Lo: key.Lo, Hi: key.Hi}}
	}
	return &plan.Scan{Table: name}
}

func (x *Executor) compileSelect(s *Select) (plan.Node, error) {
	if s.Join != nil {
		return x.compileJoinSelect(s)
	}
	t, err := x.db.Table(s.From)
	if err != nil {
		return nil, err
	}
	source := compileSource(t, s.From, s.Where)
	return x.compileSelectBody(s, source, s.Where)
}

// compileSelectBody builds everything above the (possibly joined)
// source: grouping or aggregation, ordering, limiting, projection.
// where is the residual condition to fuse into the first operator.
func (x *Executor) compileSelectBody(s *Select, source plan.Node, where Expr) (plan.Node, error) {
	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	filter := func(force bool) *plan.Filter {
		f := &plan.Filter{Input: source, Cond: exprOrNil(where), CondSQL: condSQL(where)}
		if force {
			f.Force = s.Force
		}
		return f
	}
	switch {
	case s.GroupBy != nil:
		return x.compileGroup(s, filter(false))
	case hasAgg:
		if s.Order != nil || s.Limit != nil {
			return nil, fmt.Errorf("sql: ORDER BY/LIMIT need a GROUP BY to apply to aggregates")
		}
		specs, err := compileAggSpecs(s.Items)
		if err != nil {
			return nil, err
		}
		return &plan.Aggregate{Input: filter(false), Specs: specs}, nil
	default:
		if s.Force != nil && (s.Order != nil || s.Limit != nil) {
			return nil, fmt.Errorf("sql: FORCE cannot combine with ORDER BY/LIMIT (the sort pipeline fixes the physical operators)")
		}
		node, err := compileOrderLimit(s, filter(true), s.Order, false)
		if err != nil {
			return nil, err
		}
		if !s.Star && len(s.Items) > 0 {
			items := make([]plan.ProjItem, len(s.Items))
			for i, item := range s.Items {
				name := item.Alias
				if name == "" {
					if cr, ok := item.Expr.(*ColumnRef); ok {
						name = cr.Column
					} else {
						name = fmt.Sprintf("col%d", i+1)
					}
				}
				items[i] = plan.ProjItem{Col: -1, E: item.Expr, SQL: exprSQL(item.Expr), Name: name}
			}
			node = &plan.Project{Input: node, Items: items}
		}
		return &plan.Collect{Input: node}, nil
	}
}

// compileOrderLimit wraps node in Sort and Limit nodes per the
// statement's clauses. A LIMIT without ORDER BY still needs the
// dummy-last compaction a Sort provides, so it gets a keyless Sort.
// group marks that node is a GroupBy output laid out [group, aggs...]:
// the sort key is then the synthetic "group" column.
func compileOrderLimit(s *Select, node plan.Node, order *OrderClause, group bool) (plan.Node, error) {
	switch {
	case order != nil:
		// EXPLAIN always shows the user's column; over a GroupBy the
		// engine's output names the key column "group", so the
		// executable key is rewritten while KeySQL keeps the original.
		key := Expr(order.Col)
		if group {
			key = &ColumnRef{Column: "group"}
		}
		node = &plan.Sort{Input: node, Key: key, KeySQL: columnRefSQL(order.Col), Desc: order.Desc}
	case s.Limit != nil:
		node = &plan.Sort{Input: node}
	}
	if s.Limit != nil {
		node = &plan.Limit{Input: node, N: *s.Limit}
	}
	return node, nil
}

// compileAggSpecs converts aggregate select items, rejecting bare
// columns (those need GROUP BY).
func compileAggSpecs(items []SelectItem) ([]plan.AggSpec, error) {
	specs := make([]plan.AggSpec, 0, len(items))
	for _, item := range items {
		if item.Agg == nil {
			return nil, fmt.Errorf("sql: mixing aggregates and plain columns requires GROUP BY")
		}
		specs = append(specs, plan.AggSpec{Kind: item.Agg.Kind, Column: item.Agg.Column, Name: aggName(item)})
	}
	return specs, nil
}

// aggName is the output column name of one aggregate item.
func aggName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	name := item.Agg.Kind.String()
	if item.Agg.Column != "" {
		return name + "(" + item.Agg.Column + ")"
	}
	return name + "(*)"
}

// compileGroup lowers GROUP BY queries. Select items must be the group
// expression or aggregates; the Project node reorders the engine's
// [group, aggregates...] layout into select-list order.
func (x *Executor) compileGroup(s *Select, input *plan.Filter) (plan.Node, error) {
	var specs []plan.AggSpec
	var items []plan.ProjItem
	for _, item := range s.Items {
		if item.Agg != nil {
			specs = append(specs, plan.AggSpec{Kind: item.Agg.Kind, Column: item.Agg.Column, Name: aggName(item)})
			items = append(items, plan.ProjItem{Col: len(specs), Name: aggName(item)}) // 1+aggIdx
			continue
		}
		// A non-aggregate item must be the grouping expression itself.
		if !exprEqual(item.Expr, s.GroupBy) {
			return nil, fmt.Errorf("sql: non-aggregate select item must match GROUP BY expression")
		}
		name := item.Alias
		if name == "" {
			name = "group"
		}
		items = append(items, plan.ProjItem{Col: 0, Name: name})
	}
	var node plan.Node = &plan.GroupBy{
		Input: input, Key: s.GroupBy, KeySQL: exprSQL(s.GroupBy), Specs: specs,
	}
	if s.Order != nil {
		// Ordering a grouped result: the key must be the grouping
		// expression (the aggregates have no pre-projection column to
		// sort by).
		if !exprEqual(s.Order.Col, s.GroupBy) {
			return nil, fmt.Errorf("sql: ORDER BY over GROUP BY must order by the grouping expression")
		}
	}
	node, err := compileOrderLimit(s, node, s.Order, true)
	if err != nil {
		return nil, err
	}
	node = &plan.Project{Input: node, Items: items}
	return &plan.Collect{Input: node}, nil
}

// compileJoinSelect lowers JOIN queries: push single-side WHERE
// conjuncts into the join's oblivious pre-filters, join, then compile
// the residual select (and any grouping, ordering, limiting) over the
// joined table.
func (x *Executor) compileJoinSelect(s *Select) (plan.Node, error) {
	lt, err := x.db.Table(s.From)
	if err != nil {
		return nil, err
	}
	rt, err := x.db.Table(s.Join.Right)
	if err != nil {
		return nil, err
	}
	lcol, rcol, err := resolveJoinCols(s, lt, rt)
	if err != nil {
		return nil, err
	}

	// Split WHERE into per-side conjuncts and a residual.
	var left, right, residual []Expr
	for _, c := range flattenAnd(s.Where) {
		if c == nil {
			continue
		}
		switch {
		case exprOnlyUses(c, lt.Schema(), s.From):
			left = append(left, c)
		case exprOnlyUses(c, rt.Schema(), s.Join.Right):
			right = append(right, c)
		default:
			residual = append(residual, c)
		}
	}
	side := func(name string, conds []Expr) plan.Node {
		var n plan.Node = &plan.Scan{Table: name}
		if len(conds) > 0 {
			cond := andExprs(conds)
			n = &plan.Filter{Input: n, Cond: cond, CondSQL: exprSQL(cond)}
		}
		return n
	}
	join := &plan.Join{
		Left:      side(s.From, left),
		Right:     side(s.Join.Right, right),
		LeftTable: s.From, RightTable: s.Join.Right,
		LeftCol: lcol, RightCol: rcol,
		Force: s.Join.ForceJoinAlgorithm,
	}
	return x.compileSelectBody(s, join, andExprs(residual))
}
