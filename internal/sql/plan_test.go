package sql

import (
	"fmt"
	"strings"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// These tests pin the compiled-plan pipeline: ORDER BY / LIMIT
// semantics, the obliviousness of the composed Sort+Limit plan, and the
// cache's replay behavior (hit path skips compilation, EXPLAIN shows
// the very plan the cache serves).

func planExec(t *testing.T) *Executor {
	t.Helper()
	x := New(core.MustOpen(core.Config{}))
	for _, stmt := range []string{
		"CREATE TABLE t (id INTEGER, v INTEGER, name VARCHAR(8)) CAPACITY = 16",
		"INSERT INTO t VALUES (1, 30, 'a'), (2, 10, 'b'), (3, 40, 'c'), (4, 20, 'd'), (5, 5, 'e')",
	} {
		mustExec(t, x, stmt)
	}
	return x
}

func TestOrderByAscDescAndLimit(t *testing.T) {
	x := planExec(t)
	res := mustExec(t, x, "SELECT id, v FROM t WHERE v >= 10 ORDER BY v")
	var got []int64
	for _, r := range res.Rows {
		got = append(got, r[1].AsInt())
	}
	want := []int64{10, 20, 30, 40}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ORDER BY v = %v, want %v", got, want)
	}

	res = mustExec(t, x, "SELECT id, v FROM t WHERE v >= 10 ORDER BY v DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][1].AsInt() != 40 || res.Rows[1][1].AsInt() != 30 {
		t.Fatalf("ORDER BY v DESC LIMIT 2 = %v", res.Rows)
	}

	// LIMIT past the match count returns every matching row.
	res = mustExec(t, x, "SELECT id FROM t WHERE v > 25 ORDER BY id LIMIT 10")
	if len(res.Rows) != 2 {
		t.Fatalf("over-limit rows = %v", res.Rows)
	}

	// LIMIT without ORDER BY compacts and truncates: row identity is
	// unspecified, the count is not.
	res = mustExec(t, x, "SELECT id FROM t LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("bare LIMIT returned %d rows, want 3", len(res.Rows))
	}

	res = mustExec(t, x, "SELECT id FROM t WHERE v = 999 ORDER BY id LIMIT 3")
	if len(res.Rows) != 0 {
		t.Fatalf("no-match ORDER BY LIMIT returned %v", res.Rows)
	}
}

func TestOrderByOverGroupByAndJoin(t *testing.T) {
	x := planExec(t)
	mustExec(t, x, "INSERT INTO t VALUES (6, 10, 'f'), (7, 10, 'g')")
	res := mustExec(t, x, "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 40 || res.Rows[1][0].AsInt() != 30 {
		t.Fatalf("grouped ORDER BY DESC LIMIT = %v", res.Rows)
	}
	if res.Cols[1] != "COUNT(*)" {
		t.Fatalf("grouped cols = %v", res.Cols)
	}

	mustExec(t, x, "CREATE TABLE u (fk INTEGER, w INTEGER) CAPACITY = 8")
	mustExec(t, x, "INSERT INTO u VALUES (1, 7), (3, 9), (5, 8)")
	res = mustExec(t, x, "SELECT id, w FROM t JOIN u ON id = fk ORDER BY w DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][1].AsInt() != 9 || res.Rows[1][1].AsInt() != 8 {
		t.Fatalf("join ORDER BY = %v", res.Rows)
	}
}

func TestOrderByGroupMismatchRejected(t *testing.T) {
	x := planExec(t)
	if _, err := x.Execute("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY id"); err == nil {
		t.Fatal("ORDER BY on a non-grouping column over GROUP BY accepted")
	}
	if _, err := x.Execute("SELECT COUNT(*) FROM t ORDER BY id"); err == nil {
		t.Fatal("ORDER BY over a scalar aggregate accepted")
	}
	if _, err := x.Execute("SELECT id FROM t ORDER BY id FORCE Hash"); err == nil {
		t.Fatal("FORCE combined with ORDER BY accepted")
	}
}

func TestLimitParameterRejected(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM t LIMIT ?",
		"SELECT * FROM t LIMIT $1",
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "LIMIT must be a literal") {
			t.Fatalf("%s: parameter limit accepted (%v)", src, err)
		}
	}
}

func TestOrderLimitStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM t WHERE (v > 1) ORDER BY k LIMIT 3",
		"SELECT * FROM t ORDER BY k DESC",
		"SELECT * FROM t LIMIT 0",
		"EXPLAIN SELECT * FROM t WHERE (v = $1) ORDER BY k LIMIT 3",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := stmt.(fmt.Stringer).String(); got != src {
			t.Fatalf("String() = %q, want %q", got, src)
		}
	}
	// ASC normalizes away.
	stmt, err := Parse("SELECT * FROM t ORDER BY k ASC")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.(fmt.Stringer).String(); got != "SELECT * FROM t ORDER BY k" {
		t.Fatalf("ASC did not normalize: %q", got)
	}
	if _, err := Parse("EXPLAIN EXPLAIN SELECT * FROM t"); err == nil {
		t.Fatal("nested EXPLAIN accepted")
	}
}

// TestOrderLimitTraceObliviousAcrossData is the headline obliviousness
// claim for the composed plan: one statement shape, three data
// distributions with *different match counts* (all, none, scattered),
// different bound arguments — byte-identical traces. The Sort+Limit
// pipeline skips the stats scan and sizes everything from |T| and the
// public limit, so unlike a plain SELECT not even |R| distinguishes the
// runs.
func TestOrderLimitTraceObliviousAcrossData(t *testing.T) {
	const shape = "SELECT id, v FROM t WHERE v = $1 ORDER BY id LIMIT 4"
	run := func(vals []int64, arg int64) *trace.Tracer {
		t.Helper()
		tr := trace.New()
		db, err := core.Open(core.Config{Tracer: tr, Key: make([]byte, 32)})
		if err != nil {
			t.Fatal(err)
		}
		x := New(db)
		mustExec(t, x, "CREATE TABLE t (id INTEGER, v INTEGER) CAPACITY = 16")
		var sb strings.Builder
		sb.WriteString("INSERT INTO t VALUES ")
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, v)
		}
		mustExec(t, x, sb.String())
		prep, err := x.Prepare(shape)
		if err != nil {
			t.Fatal(err)
		}
		tr.Reset()
		if _, err := prep.Exec([]table.Value{table.Int(arg)}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	allMatch := run([]int64{7, 7, 7, 7, 7, 7, 7, 7}, 7)
	noneMatch := run([]int64{1, 2, 3, 4, 5, 6, 7, 8}, 99)
	scattered := run([]int64{5, 9, 5, 9, 5, 9, 5, 9}, 9)
	if d := trace.Diff(allMatch, noneMatch); d != "" {
		t.Fatalf("ORDER BY/LIMIT trace depends on the match count: %s", d)
	}
	if d := trace.Diff(allMatch, scattered); d != "" {
		t.Fatalf("ORDER BY/LIMIT trace depends on the data distribution: %s", d)
	}
	if allMatch.Len() == 0 {
		t.Fatal("no events traced; the test is vacuous")
	}
}

// TestCompiledPlanCacheReplay pins the cache-hit fast path: the first
// execution of a shape compiles its plan, every further execution —
// with different arguments — replays it, and EXPLAIN renders from the
// same cached entry without compiling again.
func TestCompiledPlanCacheReplay(t *testing.T) {
	x := planExec(t)
	base := x.CacheStats()

	prep, err := x.Prepare("SELECT id FROM t WHERE v = $1 ORDER BY id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Exec([]table.Value{table.Int(10)}); err != nil {
		t.Fatal(err)
	}
	mid := x.CacheStats()
	if got := mid.Compiles - base.Compiles; got != 1 {
		t.Fatalf("first execution compiled %d times, want 1", got)
	}
	for _, arg := range []int64{20, 30, 40} {
		if _, err := prep.Exec([]table.Value{table.Int(arg)}); err != nil {
			t.Fatal(err)
		}
	}
	after := x.CacheStats()
	if got := after.Compiles - base.Compiles; got != 1 {
		t.Fatalf("re-executions recompiled: %d compiles, want 1", got)
	}
	if got := after.CompileSkips - mid.CompileSkips; got != 3 {
		t.Fatalf("compiled-plan replays = %d, want 3", got)
	}

	// EXPLAIN of the same shape shares the entry: no new compilation,
	// and the rendered plan is the one the executions replayed.
	expl := mustExec(t, x, "EXPLAIN SELECT id FROM t WHERE v = $1 ORDER BY id LIMIT 2")
	if got := x.CacheStats().Compiles - base.Compiles; got != 1 {
		t.Fatalf("EXPLAIN recompiled: %d compiles, want 1", got)
	}
	var lines []string
	for _, r := range expl.Rows {
		lines = append(lines, r[0].AsString())
	}
	rendered := strings.Join(lines, "\n")
	for _, want := range []string{"Limit 2", "Sort id", "Filter (v = $1)", "Scan t"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, rendered)
		}
	}
}

// TestDDLInvalidatesCompiledPlans pins the catalog epoch: a plan
// compiled against one catalog recompiles after DDL instead of
// replaying stale access-path decisions.
func TestDDLInvalidatesCompiledPlans(t *testing.T) {
	x := planExec(t)
	prep, err := x.Prepare("SELECT id FROM t WHERE v = $1 ORDER BY id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Exec([]table.Value{table.Int(10)}); err != nil {
		t.Fatal(err)
	}
	before := x.CacheStats()
	mustExec(t, x, "CREATE TABLE other (z INTEGER)")
	if _, err := prep.Exec([]table.Value{table.Int(10)}); err != nil {
		t.Fatal(err)
	}
	after := x.CacheStats()
	if got := after.Compiles - before.Compiles; got != 1 {
		t.Fatalf("post-DDL execution compiled %d times, want 1 (stale plan must not replay)", got)
	}
}

// TestAggregateColumnResolutionScopedToJoins: the r_ prefix fallback
// for aggregate columns applies only to joined inputs. A plain table
// with an r_-named column must not satisfy a reference to the bare
// name.
func TestAggregateColumnResolutionScopedToJoins(t *testing.T) {
	x := New(core.MustOpen(core.Config{}))
	mustExec(t, x, "CREATE TABLE odd (k INTEGER, r_v INTEGER) CAPACITY = 8")
	mustExec(t, x, "INSERT INTO odd VALUES (1, 10)")
	if _, err := x.Execute("SELECT SUM(v) FROM odd"); err == nil ||
		!strings.Contains(err.Error(), `no column "v"`) {
		t.Fatalf("SUM(v) over a plain table with only r_v: %v", err)
	}
	// Over a join, right-side columns resolve in the joined schema —
	// directly when unique, and a duplicate bare name resolves to the
	// left side (the joined schema renames the right duplicate r_v).
	mustExec(t, x, "CREATE TABLE l (k INTEGER, v INTEGER) CAPACITY = 8")
	mustExec(t, x, "CREATE TABLE r (k INTEGER, v INTEGER, w INTEGER) CAPACITY = 8")
	mustExec(t, x, "INSERT INTO l VALUES (1, 100)")
	mustExec(t, x, "INSERT INTO r VALUES (1, 7, 3)")
	res := mustExec(t, x, "SELECT SUM(w), SUM(v) FROM l JOIN r ON l.k = r.k")
	if res.Rows[0][0].AsFloat() != 3 || res.Rows[0][1].AsFloat() != 100 {
		t.Fatalf("join aggregate resolution = %v, want [3 100]", res.Rows)
	}
}

// TestEngineAPIDDLInvalidatesCompiledPlans: DDL issued through the
// embedded engine API (not SQL) must also void compiled plans — the
// catalog epoch lives on the engine, not the SQL layer.
func TestEngineAPIDDLInvalidatesCompiledPlans(t *testing.T) {
	x := New(core.MustOpen(core.Config{}))
	mustExec(t, x, "CREATE TABLE t (k INTEGER, v INTEGER) INDEX ON k CAPACITY = 16")
	mustExec(t, x, "INSERT INTO t VALUES (100, 1), (200, 2)")
	prep, err := x.Prepare("SELECT v FROM t WHERE k = 100")
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Exec(nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("pre-DDL exec = %v, %v", res, err)
	}
	// Drop and re-create through the core API: the new table indexes v,
	// and the only k=100 row has v != 100 — a stale IndexScan plan
	// ranging [100,100] over the NEW index would silently miss it.
	if err := x.DB().DropTable("t"); err != nil {
		t.Fatal(err)
	}
	schema := table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindInt},
	)
	if _, err := x.DB().CreateTable("t", schema, core.TableOptions{
		Kind: core.KindBoth, KeyColumn: "v", Capacity: 16,
	}); err != nil {
		t.Fatal(err)
	}
	if err := x.DB().Insert("t", table.Row{table.Int(100), table.Int(7)}); err != nil {
		t.Fatal(err)
	}
	res, err = prep.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("post-core-DDL exec replayed a stale plan: %v", res.Rows)
	}
}

// TestConcurrentExplainSharedPlan hammers one cached shape with
// concurrent EXPLAINs and executions; annotation and rendering share
// the plan object, so this is a race-detector test.
func TestConcurrentExplainSharedPlan(t *testing.T) {
	x := planExec(t)
	prep, err := x.Prepare("SELECT id FROM t WHERE v = $1 ORDER BY id LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Exec([]table.Value{table.Int(10)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					if _, err := x.Execute("EXPLAIN SELECT id FROM t WHERE v = $1 ORDER BY id LIMIT 2"); err != nil {
						done <- err
						return
					}
				} else if _, err := prep.Exec([]table.Value{table.Int(20)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestExplainOfLiteralsStaysOutOfCache: a stream of distinct literal
// EXPLAINs must not occupy (and at the limit, wipe) the shape cache.
func TestExplainOfLiteralsStaysOutOfCache(t *testing.T) {
	x := planExec(t)
	before := x.CacheStats().Entries
	for i := 0; i < 10; i++ {
		mustExec(t, x, fmt.Sprintf("EXPLAIN SELECT * FROM t WHERE v = %d", i))
	}
	if got := x.CacheStats().Entries; got != before {
		t.Fatalf("literal EXPLAINs grew the cache from %d to %d entries", before, got)
	}
	// Parameterized EXPLAIN does cache — and shares with execution.
	mustExec(t, x, "EXPLAIN SELECT * FROM t WHERE v = $1")
	if got := x.CacheStats().Entries; got != before+1 {
		t.Fatalf("parameterized EXPLAIN did not cache: %d entries, want %d", got, before+1)
	}
}

// TestExplainBindsNothing: EXPLAIN of a parameterized shape runs with
// zero arguments — the plan is pure shape, so there is nothing to bind.
func TestExplainBindsNothing(t *testing.T) {
	x := planExec(t)
	res, err := x.ExecuteArgs("EXPLAIN SELECT * FROM t WHERE id = $1 AND v < $2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Cols[0] != "plan" {
		t.Fatalf("EXPLAIN result = %+v", res)
	}
	// And pick counters tally select and ORDER BY/LIMIT executions.
	mustExec(t, x, "SELECT id FROM t WHERE v = 10")
	mustExec(t, x, "SELECT id FROM t ORDER BY id LIMIT 2")
	picks := x.DB().PlanStats()
	if picks.Sorts == 0 || picks.Limits == 0 {
		t.Fatalf("pick counters missing sort/limit: %+v", picks)
	}
	if len(picks.Select) == 0 {
		t.Fatalf("pick counters missing selects: %+v", picks)
	}
}

// BenchmarkPlanCacheHit measures the cache-hit execution path: one
// prepared shape re-executed with bound arguments, parse and plan
// compilation amortized to zero.
func BenchmarkPlanCacheHit(b *testing.B) {
	x := New(core.MustOpen(core.Config{}))
	for _, stmt := range []string{
		"CREATE TABLE t (id INTEGER, v INTEGER) CAPACITY = 64",
	} {
		if _, err := x.Execute(stmt); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if _, err := x.Execute(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%8)); err != nil {
			b.Fatal(err)
		}
	}
	prep, err := x.Prepare("SELECT id FROM t WHERE v = $1 ORDER BY id LIMIT 4")
	if err != nil {
		b.Fatal(err)
	}
	args := []table.Value{table.Int(3)}
	// Warm the compiled plan so every timed iteration is a replay.
	if _, err := prep.Exec(args); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Exec(args); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs := x.CacheStats()
	if cs.CompileSkips == 0 {
		b.Fatal("benchmark never hit the compiled-plan fast path")
	}
}
