package sql

import (
	"strings"
	"testing"
)

func TestShapeElidesLiterals(t *testing.T) {
	cases := []struct{ src, want string }{
		{"SELECT name FROM t WHERE id = 42", "SELECT name FROM t WHERE id = ?"},
		{"INSERT INTO t VALUES (1, 'secret')", "INSERT INTO t VALUES ( ? , ? )"},
		{"SELECT * FROM t WHERE v = $1", "SELECT * FROM t WHERE v = $1"},
		{"SELECT * FROM t WHERE v = ? AND w = 3.5", "SELECT * FROM t WHERE v = ? AND w = ?"},
	}
	for _, c := range cases {
		if got := Shape(c.src); got != c.want {
			t.Errorf("Shape(%q) = %q, want %q", c.src, got, c.want)
		}
	}
	// No literal survives, whatever the spelling.
	for _, src := range []string{
		"SELECT * FROM t WHERE name = 'alice'",
		"UPDATE t SET v = 987654 WHERE id = 42",
	} {
		shape := Shape(src)
		for _, leak := range []string{"alice", "987654", "42"} {
			if strings.Contains(shape, leak) {
				t.Errorf("Shape(%q) = %q leaks %q", src, shape, leak)
			}
		}
	}
	if got := Shape("SELECT ' unterminated"); got != "?" {
		t.Errorf("Shape of unlexable input = %q, want %q", got, "?")
	}
}

func TestKindOf(t *testing.T) {
	cases := map[string]string{
		"SELECT * FROM t":             "select",
		"INSERT INTO t VALUES (1)":    "insert",
		"UPDATE t SET v = 1":          "update",
		"DELETE FROM t":               "delete",
		"CREATE TABLE t (id INTEGER)": "create_table",
		"DROP TABLE t":                "drop_table",
		"EXPLAIN SELECT * FROM t":     "explain",
	}
	for src, want := range cases {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := KindOf(stmt); got != want {
			t.Errorf("KindOf(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestPreparedShape(t *testing.T) {
	x := New(nil)
	p, err := x.Prepare("SELECT name FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	shape := p.Shape()
	if strings.Contains(shape, "7") {
		t.Errorf("Prepared.Shape() = %q leaks the literal", shape)
	}
	if !strings.Contains(shape, "?") {
		t.Errorf("Prepared.Shape() = %q has no placeholder", shape)
	}
	if p.Kind() != "select" {
		t.Errorf("Prepared.Kind() = %q", p.Kind())
	}
}
