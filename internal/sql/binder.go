package sql

import (
	"fmt"
	"sync"

	"oblidb/internal/exec"
	"oblidb/internal/plan"
	"oblidb/internal/table"
)

// binder implements plan.Binder: it carries one execution's bound
// argument values and compiles the plan's opaque shape expressions into
// callbacks the interpreter's operators evaluate inside the enclave.
// Argument values exist only here — never in the plan, the cache key,
// or anything the planner reads — so binding cannot influence what the
// host observes.
//
// Evaluation errors are deferred (operators must run their full padded
// access sequence regardless of row-level failures): the first error
// sticks and surfaces through Err, which the interpreter checks after
// operators complete. The capture is mutex-guarded because partition-
// parallel operators evaluate one predicate from several workers.
type binder struct {
	args []table.Value

	mu  sync.Mutex
	err error
}

func newBinder(args []table.Value) *binder { return &binder{args: args} }

func (b *binder) capture(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// Err reports the first deferred evaluation error.
func (b *binder) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// resolverFor builds an expression resolver for a schema, with join
// naming context when the rows come from a join.
func (b *binder) resolverFor(s *table.Schema, names *plan.JoinNames) *resolver {
	r := newResolver(s).withArgs(b.args)
	if names != nil {
		r.leftTable = names.Left
		r.rightTable = names.Right
		r.rightStart = names.RightStart
	}
	return r
}

// asExpr recovers the sql AST expression behind a plan's opaque Expr.
func asExpr(e plan.Expr) (Expr, error) {
	x, ok := e.(Expr)
	if !ok {
		return nil, fmt.Errorf("sql: plan carries a foreign expression %T", e)
	}
	return x, nil
}

// Pred compiles a filter condition into a predicate over rows of s.
func (b *binder) Pred(cond plan.Expr, s *table.Schema, names *plan.JoinNames) (table.Pred, error) {
	if cond == nil {
		return table.All, nil
	}
	e, err := asExpr(cond)
	if err != nil {
		return nil, err
	}
	res := b.resolverFor(s, names)
	return func(row table.Row) bool {
		v, err := res.eval(e, row)
		if err != nil {
			b.capture(err)
			return false
		}
		return truthy(v)
	}, nil
}

// GroupKey compiles the grouping expression into a per-row key.
func (b *binder) GroupKey(ge plan.Expr, s *table.Schema, names *plan.JoinNames) (exec.GroupBy, error) {
	e, err := asExpr(ge)
	if err != nil {
		return nil, err
	}
	res := b.resolverFor(s, names)
	return func(r table.Row) table.Value {
		v, err := res.eval(e, r)
		if err != nil {
			b.capture(err)
		}
		return v
	}, nil
}

// Column resolves a column-reference expression to its index in s.
func (b *binder) Column(ce plan.Expr, s *table.Schema, names *plan.JoinNames) (int, error) {
	e, err := asExpr(ce)
	if err != nil {
		return -1, err
	}
	cr, ok := e.(*ColumnRef)
	if !ok {
		return -1, fmt.Errorf("sql: ORDER BY key must be a column, got %T", e)
	}
	return b.resolverFor(s, names).resolve(cr)
}

// Project compiles projection items against the collected result's
// columns. Positional items (Col >= 0) pass the input column through;
// expression items re-resolve against the raw column names, as the
// projection always ran (a trace-neutral, in-enclave computation).
func (b *binder) Project(items []plan.ProjItem, cols []string, names *plan.JoinNames) (func(table.Row) (table.Row, error), error) {
	sCols := make([]table.Column, len(cols))
	for i, name := range cols {
		sCols[i] = table.Column{Name: name, Kind: table.KindInt}
	}
	schema, err := table.NewSchema(sCols...)
	if err != nil {
		return nil, err
	}
	res := b.resolverFor(schema, names)
	exprs := make([]Expr, len(items))
	for i, it := range items {
		if it.Col >= 0 {
			if it.Col >= len(cols) {
				return nil, fmt.Errorf("sql: projection column %d out of range", it.Col)
			}
			continue
		}
		if exprs[i], err = asExpr(it.E); err != nil {
			return nil, err
		}
	}
	return func(r table.Row) (table.Row, error) {
		out := make(table.Row, len(items))
		for i, it := range items {
			if it.Col >= 0 {
				out[i] = r[it.Col]
				continue
			}
			v, err := res.eval(exprs[i], r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}, nil
}

// RowValues evaluates one INSERT row's constant expressions with this
// execution's arguments bound.
func (b *binder) RowValues(exprs []plan.Expr) (table.Row, error) {
	row := make(table.Row, len(exprs))
	for i, pe := range exprs {
		e, err := asExpr(pe)
		if err != nil {
			return nil, err
		}
		v, err := constEval(e, b.args)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// Updater compiles SET clauses into an in-place row updater over s.
func (b *binder) Updater(sets []plan.SetExpr, s *table.Schema) (table.Updater, error) {
	res := b.resolverFor(s, nil)
	cols := make([]int, len(sets))
	exprs := make([]Expr, len(sets))
	for i, set := range sets {
		c := s.ColIndex(set.Column)
		if c < 0 {
			return nil, fmt.Errorf("sql: no column %q", set.Column)
		}
		cols[i] = c
		e, err := asExpr(set.Value)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
	}
	return func(r table.Row) table.Row {
		for i := range sets {
			v, err := res.eval(exprs[i], r)
			if err != nil {
				b.capture(err)
				return r
			}
			r[cols[i]] = v
		}
		return r
	}, nil
}
