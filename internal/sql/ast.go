package sql

import (
	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (cols...) [STORAGE = kind]
// [USING INDEX(col) | INDEX ON col] [CAPACITY = n] [OBLIVIOUS INSERTS].
type CreateTable struct {
	Name     string
	Columns  []table.Column
	Kind     core.StorageKind
	IndexCol string
	// UsingIndex marks the USING INDEX(col) spelling, which picks the
	// index-only storage method by default; the INDEX ON col spelling
	// defaults to both representations.
	UsingIndex bool
	Capacity   int
	ObliviousI bool
}

// Insert is INSERT INTO name VALUES (...), (...). Each value is kept as
// an expression (not pre-evaluated) so placeholders bind at execution
// time; rows of pure literals still cost one constant fold per execution.
type Insert struct {
	Name   string
	Values [][]Expr
}

// Select is SELECT items FROM table [JOIN right ON l = r]
// [WHERE expr] [GROUP BY expr] [ORDER BY col [ASC|DESC]] [LIMIT n]
// [FORCE algorithm].
type Select struct {
	Items   []SelectItem
	Star    bool
	From    string
	Join    *JoinClause
	Where   Expr
	GroupBy Expr
	Order   *OrderClause
	// Limit is the LIMIT row count; nil means no LIMIT. The parser only
	// accepts a literal here: the limit is the public output size, and
	// a placeholder limit would make that size depend on a private
	// argument value.
	Limit *int
	Force *exec.SelectAlgorithm
}

// OrderClause is ORDER BY col [ASC|DESC]. The key must be a column
// reference; ASC is the normalized default.
type OrderClause struct {
	Col  *ColumnRef
	Desc bool
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Agg is non-nil when the item is an aggregate call.
	Agg *AggItem
}

// AggItem is COUNT(*) or KIND(column).
type AggItem struct {
	Kind   exec.AggKind
	Column string // empty for COUNT(*)
}

// JoinClause is JOIN right ON leftCol = rightCol.
type JoinClause struct {
	Right              string
	LeftCol, RightCol  *ColumnRef
	ForceJoinAlgorithm *exec.JoinAlgorithm
}

// Update is UPDATE name SET col = expr, ... [WHERE expr].
type Update struct {
	Name  string
	Sets  []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM name [WHERE expr].
type Delete struct {
	Name  string
	Where Expr
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Explain is EXPLAIN <stmt>: compile the inner statement into its
// physical plan and render it instead of executing. EXPLAIN is pure
// statement shape — it never binds arguments (NumParams reports 0 even
// when the inner statement has placeholders) and touches no table data.
type Explain struct{ Stmt Statement }

// Begin opens an explicit transaction (BEGIN [TRANSACTION | WORK]).
type Begin struct{}

// Commit atomically applies the transaction's buffered writes.
type Commit struct{}

// Rollback discards them.
type Rollback struct{}

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*DropTable) stmt()   {}
func (*Explain) stmt()     {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}

// Expr is a SQL expression evaluated inside the enclave.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val table.Value }

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string
	Column string
}

// Binary applies an operator to two operands. Op is one of
// OR AND = <> < <= > >= + - * / %.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT expr or - expr.
type Unary struct {
	Op string
	X  Expr
}

// Call is a scalar function call (SUBSTR).
type Call struct {
	Name string
	Args []Expr
}

// Placeholder is a bound statement parameter: $n (1-based) or ?, which
// the parser numbers SQLite-style as one past the largest parameter
// index seen so far. A placeholder never folds into the statement: its
// value arrives at execution time and is visible only to the in-enclave
// evaluator, so it cannot influence the plan, the key-range extraction,
// or anything else the host observes.
type Placeholder struct {
	// Index is the 1-based parameter position.
	Index int
}

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*Binary) expr()      {}
func (*Unary) expr()       {}
func (*Call) expr()        {}
func (*Placeholder) expr() {}

// NumParams reports how many arguments a statement needs when executed:
// the largest placeholder index anywhere in it (parameters are 1-based,
// so a statement mentioning only $3 still needs three). EXPLAIN takes
// no arguments regardless of its inner statement: it renders the shape,
// which placeholders are part of, without ever binding them.
func NumParams(stmt Statement) int {
	if _, ok := stmt.(*Explain); ok {
		return 0
	}
	maxIdx := 0
	walkStatementExprs(stmt, func(e Expr) {
		if p, ok := e.(*Placeholder); ok && p.Index > maxIdx {
			maxIdx = p.Index
		}
	})
	return maxIdx
}

// walkStatementExprs visits every expression in a statement, depth-first.
func walkStatementExprs(stmt Statement, visit func(Expr)) {
	switch s := stmt.(type) {
	case *Insert:
		for _, row := range s.Values {
			for _, e := range row {
				walkExpr(e, visit)
			}
		}
	case *Select:
		for _, item := range s.Items {
			walkExpr(item.Expr, visit)
		}
		walkExpr(s.Where, visit)
		walkExpr(s.GroupBy, visit)
	case *Update:
		for _, set := range s.Sets {
			walkExpr(set.Value, visit)
		}
		walkExpr(s.Where, visit)
	case *Delete:
		walkExpr(s.Where, visit)
	}
}

func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *Binary:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *Unary:
		walkExpr(x.X, visit)
	case *Call:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	}
}
