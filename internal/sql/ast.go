package sql

import (
	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (cols...) [STORAGE = kind]
// [INDEX ON col] [CAPACITY = n] [OBLIVIOUS INSERTS].
type CreateTable struct {
	Name       string
	Columns    []table.Column
	Kind       core.StorageKind
	IndexCol   string
	Capacity   int
	ObliviousI bool
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Name string
	Rows []table.Row
}

// Select is SELECT items FROM table [JOIN right ON l = r]
// [WHERE expr] [GROUP BY expr] [FORCE algorithm].
type Select struct {
	Items   []SelectItem
	Star    bool
	From    string
	Join    *JoinClause
	Where   Expr
	GroupBy Expr
	Force   *exec.SelectAlgorithm
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Agg is non-nil when the item is an aggregate call.
	Agg *AggItem
}

// AggItem is COUNT(*) or KIND(column).
type AggItem struct {
	Kind   exec.AggKind
	Column string // empty for COUNT(*)
}

// JoinClause is JOIN right ON leftCol = rightCol.
type JoinClause struct {
	Right              string
	LeftCol, RightCol  *ColumnRef
	ForceJoinAlgorithm *exec.JoinAlgorithm
}

// Update is UPDATE name SET col = expr, ... [WHERE expr].
type Update struct {
	Name  string
	Sets  []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM name [WHERE expr].
type Delete struct {
	Name  string
	Where Expr
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*DropTable) stmt()   {}

// Expr is a SQL expression evaluated inside the enclave.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val table.Value }

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string
	Column string
}

// Binary applies an operator to two operands. Op is one of
// OR AND = <> < <= > >= + - * / %.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT expr or - expr.
type Unary struct {
	Op string
	X  Expr
}

// Call is a scalar function call (SUBSTR).
type Call struct {
	Name string
	Args []Expr
}

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*Call) expr()      {}
