package sql

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oblidb/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// TestExplainGolden pins the rendered plan for a set of statement
// shapes against golden files. The fixture is deterministic — fixed
// capacities, fixed enclave config — so the rendering (which includes
// public catalog sizes and padded cost estimates) is stable per shape.
// Regenerate with: go test ./internal/sql/ -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	x := New(core.MustOpen(core.Config{}))
	for _, stmt := range []string{
		"CREATE TABLE orders (id INTEGER, amount INTEGER, tag VARCHAR(8)) INDEX ON id CAPACITY = 64",
		"CREATE TABLE items (order_id INTEGER, qty INTEGER) CAPACITY = 128",
	} {
		mustExec(t, x, stmt)
	}
	cases := []struct {
		name string
		sql  string
	}{
		{"select_where", "SELECT * FROM orders WHERE amount > $1"},
		{"select_order_limit", "SELECT id, amount FROM orders WHERE amount > $1 ORDER BY amount DESC LIMIT 5"},
		{"index_range", "SELECT * FROM orders WHERE id >= 10 AND id <= 20 AND amount > $1"},
		{"join_aggregate", "SELECT COUNT(*), SUM(qty) FROM orders JOIN items ON id = order_id WHERE amount > 100"},
		{"group_order_limit", "SELECT tag, COUNT(*) FROM orders GROUP BY tag ORDER BY tag LIMIT 3"},
		{"update_range", "UPDATE orders SET amount = $1 WHERE id = 7"},
		{"delete_where", "DELETE FROM orders WHERE amount < 0"},
		{"bare_limit", "SELECT * FROM orders LIMIT 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			goldenCheck(t, tc.name, explainLines(t, x, tc.sql))
		})
	}
}

// TestExplainAccessFlipGolden pins the planner's access-method flip: the
// same point-query shape is served by a flat scan on a small table and
// by the ORAM index on a large one, and EXPLAIN shows both methods'
// block-access prices either way.
func TestExplainAccessFlipGolden(t *testing.T) {
	// One record per sealed block makes flat scans pay one access per
	// row, so the flip happens at a capacity unit tests can afford.
	x := New(core.MustOpen(core.Config{RowsPerBlock: 1}))
	for _, stmt := range []string{
		"CREATE TABLE small (id INTEGER, amount INTEGER) INDEX ON id CAPACITY = 16",
		"CREATE TABLE large (id INTEGER, amount INTEGER) INDEX ON id CAPACITY = 4096",
	} {
		mustExec(t, x, stmt)
	}
	t.Run("small", func(t *testing.T) {
		goldenCheck(t, "access_flip_small", explainLines(t, x, "SELECT * FROM small WHERE id = 7"))
	})
	t.Run("large", func(t *testing.T) {
		goldenCheck(t, "access_flip_large", explainLines(t, x, "SELECT * FROM large WHERE id = 7"))
	})
}

// explainLines runs EXPLAIN and joins the rendered plan.
func explainLines(t *testing.T, x *Executor, sql string) string {
	t.Helper()
	res := mustExec(t, x, "EXPLAIN "+sql)
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r[0].AsString())
	}
	return strings.Join(lines, "\n") + "\n"
}

// goldenCheck compares got against testdata/explain/<name>.golden,
// rewriting the file under -update.
func goldenCheck(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "explain", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}
