package sql

import (
	"strings"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

func bindTestDB(t *testing.T) (*core.DB, *Executor) {
	t.Helper()
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	x := New(db)
	for _, stmt := range []string{
		"CREATE TABLE t (id INTEGER, v INTEGER, name VARCHAR(16))",
		"INSERT INTO t VALUES (1, 10, 'alice'), (2, 20, 'bob'), (3, 20, 'carol')",
	} {
		if _, err := x.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	return db, x
}

func TestPlaceholderParsing(t *testing.T) {
	cases := []struct {
		src       string
		numParams int
		rendered  string // "" = don't check
	}{
		{"SELECT * FROM t WHERE id = ?", 1, "SELECT * FROM t WHERE (id = $1)"},
		{"SELECT * FROM t WHERE id = $1", 1, "SELECT * FROM t WHERE (id = $1)"},
		{"SELECT * FROM t WHERE id = ? AND v = ?", 2, "SELECT * FROM t WHERE ((id = $1) AND (v = $2))"},
		// SQLite numbering: ? takes one past the largest index so far.
		{"SELECT * FROM t WHERE id = $2 AND v = ?", 3, "SELECT * FROM t WHERE ((id = $2) AND (v = $3))"},
		{"SELECT * FROM t WHERE id = $9", 9, ""},
		{"INSERT INTO t VALUES (?, ?, ?)", 3, "INSERT INTO t VALUES ($1, $2, $3)"},
		{"UPDATE t SET v = $1 WHERE id = $2", 2, ""},
		{"DELETE FROM t WHERE v = ?", 1, ""},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if n := NumParams(stmt); n != c.numParams {
			t.Errorf("NumParams(%q) = %d, want %d", c.src, n, c.numParams)
		}
		if c.rendered != "" {
			if got := stmt.(interface{ String() string }).String(); got != c.rendered {
				t.Errorf("String(%q) = %q, want %q", c.src, got, c.rendered)
			}
		}
	}
}

func TestPlaceholderParseErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM t WHERE id = $0",
		"SELECT * FROM t WHERE id = $",
		"SELECT * FROM t WHERE id = $99999999999999999999",
		"SELECT * FROM t WHERE id = $70000", // above maxParamIndex
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestExecuteArgsSelect(t *testing.T) {
	_, x := bindTestDB(t)
	res, err := x.ExecuteArgs("SELECT name FROM t WHERE id = $1", []table.Value{table.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "bob" {
		t.Fatalf("got %v", res.Rows)
	}
	// Same shape, different argument, via the anonymous spelling.
	res, err = x.ExecuteArgs("SELECT name FROM t WHERE id = ?", []table.Value{table.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "carol" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestExecuteArgsInsertUpdateDelete(t *testing.T) {
	_, x := bindTestDB(t)
	res, err := x.ExecuteArgs("INSERT INTO t VALUES ($1, $2, $3)",
		[]table.Value{table.Int(4), table.Int(40), table.Str("dave")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("affected = %v", res.Rows[0][0])
	}
	if _, err := x.ExecuteArgs("UPDATE t SET v = $1 WHERE name = $2",
		[]table.Value{table.Int(44), table.Str("dave")}); err != nil {
		t.Fatal(err)
	}
	out, err := x.ExecuteArgs("SELECT v FROM t WHERE id = ?", []table.Value{table.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].AsInt() != 44 {
		t.Fatalf("got %v", out.Rows)
	}
	del, err := x.ExecuteArgs("DELETE FROM t WHERE id = $1", []table.Value{table.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if del.Rows[0][0].AsInt() != 1 {
		t.Fatalf("deleted %v", del.Rows[0][0])
	}
}

func TestBindingArityErrors(t *testing.T) {
	_, x := bindTestDB(t)
	cases := []struct {
		src  string
		args []table.Value
	}{
		{"SELECT * FROM t WHERE id = $1", nil},
		{"SELECT * FROM t WHERE id = $1", []table.Value{table.Int(1), table.Int(2)}},
		{"SELECT * FROM t WHERE id = $9", []table.Value{table.Int(1)}},
		{"SELECT * FROM t", []table.Value{table.Int(1)}},
	}
	for _, c := range cases {
		if _, err := x.ExecuteArgs(c.src, c.args); err == nil {
			t.Errorf("ExecuteArgs(%q, %d args) unexpectedly succeeded", c.src, len(c.args))
		} else if !strings.Contains(err.Error(), "parameter") && !strings.Contains(err.Error(), "argument") {
			t.Errorf("ExecuteArgs(%q): unhelpful error %v", c.src, err)
		}
	}
}

func TestNullArgumentErrsCleanly(t *testing.T) {
	_, x := bindTestDB(t)
	// NULL travels the binding path but no operator accepts it: the
	// comparison errors instead of panicking or silently matching.
	if _, err := x.ExecuteArgs("SELECT * FROM t WHERE id = $1", []table.Value{table.Null()}); err == nil {
		t.Fatal("comparing against NULL unexpectedly succeeded")
	}
	if _, err := x.ExecuteArgs("INSERT INTO t VALUES ($1, $2, $3)",
		[]table.Value{table.Int(9), table.Null(), table.Str("x")}); err == nil {
		t.Fatal("inserting NULL unexpectedly succeeded")
	}
}

func TestPlanCacheShapeSharing(t *testing.T) {
	_, x := bindTestDB(t)
	entries0, _, _ := x.PlanCacheStats()

	// Three spellings of one shape: ?, $1, and extra whitespace.
	for _, src := range []string{
		"SELECT name FROM t WHERE id = ?",
		"SELECT name FROM t WHERE id = $1",
		"SELECT name FROM t WHERE id = ?", // repeat: must hit
	} {
		if _, err := x.ExecuteArgs(src, []table.Value{table.Int(1)}); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	entries, hits, misses := x.PlanCacheStats()
	if entries != entries0+1 {
		t.Errorf("expected one new cache entry, got %d (from %d)", entries, entries0)
	}
	if hits < 1 {
		t.Errorf("expected at least one cache hit, got %d (misses %d)", hits, misses)
	}

	// The two distinct spellings share one parsed statement.
	s1, n1, err := x.Stmt("SELECT name FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	s2, n2, err := x.Stmt("SELECT name FROM t WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("spelling variants of one shape did not share a cached parse")
	}
	if n1 != 1 || n2 != 1 {
		t.Errorf("numParams = %d, %d; want 1, 1", n1, n2)
	}
}

// TestPlaceholderDoesNotNarrowKeyRange pins the leakage-relevant plan
// property: a bound parameter never feeds the index key-range
// extraction, so a parameterized point query on an indexed column scans
// the same (full) input regardless of the argument — the plan depends
// on the statement shape alone.
func TestPlaceholderDoesNotNarrowKeyRange(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	x := New(db)
	for _, stmt := range []string{
		"CREATE TABLE k (id INTEGER, v INTEGER) INDEX ON id",
		"INSERT INTO k VALUES (1, 10), (2, 20), (3, 30), (4, 40)",
	} {
		if _, err := x.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	// Literal point query: planner may use the index.
	if _, err := x.Execute("SELECT v FROM k WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	literalUsedIndex := db.LastPlan.UsedIndex

	// Parameterized shape: must NOT use the (value-derived) index range.
	res, err := x.ExecuteArgs("SELECT v FROM k WHERE id = $1", []table.Value{table.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if db.LastPlan.UsedIndex {
		t.Error("bound parameter narrowed an index key range: the plan depends on the argument value")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 20 {
		t.Fatalf("wrong result %v", res.Rows)
	}
	_ = literalUsedIndex // documented contrast; literal queries may narrow
}
