package sql

import (
	"fmt"
	"sync"
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// TestSelectsAvoidExclusiveLock pins the lock discipline read scaling
// depends on: on a concurrent-read engine, a SELECT — including its
// one-shot plan compilation (db.Table, db.TableMeta) — takes only the
// shared side of the engine lock. One exclusive acquisition on this
// path would park every later reader behind it (Go's RWMutex queues
// writers ahead of new readers), silently re-serializing the epoch's
// read runs; counting acquisitions catches that without any timing.
func TestSelectsAvoidExclusiveLock(t *testing.T) {
	db := core.MustOpen(core.Config{Seed: 1, ReadConcurrency: 4})
	x := New(db)
	if _, err := x.Execute("CREATE TABLE s (k INTEGER, payload VARCHAR(32)) CAPACITY = 256"); err != nil {
		t.Fatal(err)
	}
	rows := make([]table.Row, 128)
	for i := range rows {
		rows[i] = table.Row{table.Int(int64(i)), table.Str(fmt.Sprintf("p%d", i))}
	}
	if err := db.BulkLoad("s", rows); err != nil {
		t.Fatal(err)
	}

	before := db.LockStats()
	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Distinct literals so every statement is a one-shot that
				// compiles its own plan — the compile path is under test.
				if _, err := x.Execute(fmt.Sprintf("SELECT COUNT(*) FROM s WHERE k = %d", w*perWorker+i)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	after := db.LockStats()

	if got := after.ExclusiveAcquires - before.ExclusiveAcquires; got != 0 {
		t.Errorf("concurrent SELECTs took the exclusive lock %d times; want 0", got)
	}
	// Each statement takes the shared side at least twice: once to
	// compile (catalog lookup) and once to execute.
	if got, min := after.SharedAcquires-before.SharedAcquires, uint64(2*workers*perWorker); got < min {
		t.Errorf("concurrent SELECTs took the shared lock %d times; want at least %d", got, min)
	}
}
