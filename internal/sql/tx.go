package sql

import (
	"fmt"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// This file is the SQL layer's transaction support. Transactions are
// *deferred*: writes issued between BEGIN and COMMIT are buffered as
// prepared statements plus their bound arguments, and COMMIT hands the
// whole batch to the engine's ExecutePlanTx, which applies it atomically
// under one hold of the database mutex (and one durable journal commit).
// Reads inside a transaction execute immediately against the pre-
// transaction snapshot — they do not see the buffered writes, the same
// trade Obladi makes to keep epoch batching intact (PAPERS.md): the
// server commits ride the existing epoch slots unchanged, so an open
// transaction is invisible in the padded statement stream.
//
// Transaction state is per-session (a server connection, a driver conn,
// an oblidb.Tx), never per-Executor — the Executor is shared across
// sessions.

// IsBegin reports whether stmt is BEGIN.
func IsBegin(stmt Statement) bool { _, ok := stmt.(*Begin); return ok }

// IsCommit reports whether stmt is COMMIT.
func IsCommit(stmt Statement) bool { _, ok := stmt.(*Commit); return ok }

// IsRollback reports whether stmt is ROLLBACK.
func IsRollback(stmt Statement) bool { _, ok := stmt.(*Rollback); return ok }

// IsTxControl reports whether stmt is BEGIN, COMMIT, or ROLLBACK.
func IsTxControl(stmt Statement) bool {
	return IsBegin(stmt) || IsCommit(stmt) || IsRollback(stmt)
}

// IsWrite reports whether stmt is a DML write a transaction buffers.
func IsWrite(stmt Statement) bool {
	switch stmt.(type) {
	case *Insert, *Update, *Delete:
		return true
	}
	return false
}

// IsDDL reports whether stmt changes the catalog. DDL is rejected
// inside explicit transactions: a CREATE/DROP must commit durably in
// lockstep with its (irreversible) in-memory effect.
func IsDDL(stmt Statement) bool {
	switch stmt.(type) {
	case *CreateTable, *DropTable:
		return true
	}
	return false
}

// TxItem is one buffered write: the prepared statement and the argument
// values it was issued with.
type TxItem struct {
	Prep *Prepared
	Args []table.Value
}

// TxState is one session's transaction: whether one is open and the
// writes buffered so far. The zero value is ready to use. Not safe for
// concurrent use — each session owns its state.
type TxState struct {
	active bool
	items  []TxItem
}

// Active reports whether a transaction is open.
func (t *TxState) Active() bool { return t.active }

// Pending reports how many writes are buffered.
func (t *TxState) Pending() int { return len(t.items) }

// Begin opens a transaction.
func (t *TxState) Begin() error {
	if t.active {
		return fmt.Errorf("sql: transaction already open")
	}
	t.active = true
	t.items = t.items[:0]
	return nil
}

// Buffer defers one write until COMMIT. The statement must be DML (the
// caller routes reads around the buffer and rejects DDL with a clearer
// message than this one).
func (t *TxState) Buffer(prep *Prepared, args []table.Value) error {
	if !t.active {
		return fmt.Errorf("sql: no open transaction")
	}
	if IsDDL(prep.Stmt()) {
		return fmt.Errorf("sql: DDL cannot run inside a transaction")
	}
	if !IsWrite(prep.Stmt()) {
		return fmt.Errorf("sql: only INSERT, UPDATE, and DELETE can be buffered")
	}
	t.items = append(t.items, TxItem{Prep: prep, Args: args})
	return nil
}

// Take closes the transaction and returns its buffered writes for
// ExecTx — the COMMIT path.
func (t *TxState) Take() ([]TxItem, error) {
	if !t.active {
		return nil, fmt.Errorf("sql: no open transaction")
	}
	items := t.items
	t.items = nil
	t.active = false
	return items, nil
}

// Rollback closes the transaction, discarding its buffered writes.
func (t *TxState) Rollback() error {
	if !t.active {
		return fmt.Errorf("sql: no open transaction")
	}
	t.items = nil
	t.active = false
	return nil
}

// ExecTx executes a transaction's buffered writes as one atomic batch.
// It returns the usual one-row "affected" result summing every
// statement's count — the deferred writes each acknowledged 0 at buffer
// time, so the total surfaces here.
func (x *Executor) ExecTx(items []TxItem) (*core.Result, error) {
	bindings := make([]core.PlanBinding, len(items))
	for i, it := range items {
		if len(it.Args) != it.Prep.NumParams() {
			return nil, fmt.Errorf("sql: statement %d has %d parameter(s), got %d argument(s)",
				i, it.Prep.NumParams(), len(it.Args))
		}
		root, err := x.compiledPlan(it.Prep.entry)
		if err != nil {
			return nil, err
		}
		bindings[i] = core.PlanBinding{Root: root, Binder: newBinder(it.Args)}
	}
	results, err := x.db.ExecutePlanTx(bindings)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, r := range results {
		if r != nil && r.Affected && len(r.Rows) == 1 && len(r.Rows[0]) == 1 {
			total += int(r.Rows[0][0].AsInt())
		}
	}
	return affected(total), nil
}
