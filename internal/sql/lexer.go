// Package sql implements the SQL subset ObliDB's evaluation exercises:
// CREATE TABLE with a storage-method clause, INSERT, SELECT with WHERE /
// JOIN / GROUP BY / aggregates / SUBSTR, UPDATE, and DELETE. Statements
// lower onto the core engine's oblivious operators; the parser and
// expression evaluator run entirely inside the enclave, so none of this
// affects access patterns.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
	// tokParam is a numbered placeholder: the token text is the digits
	// after the $ ("1" for $1). Anonymous ? placeholders lex as tokPunct
	// and are numbered by the parser.
	tokParam
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '$':
			if err := l.lexParam(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

// isIdentStart admits ASCII letters and underscore only. The lexer
// walks bytes, so admitting non-ASCII "letters" byte-wise would split
// multi-byte runes and let invalid UTF-8 into identifiers (where e.g.
// strings.ToUpper would rewrite it to U+FFFD and break round-trips).
func isIdentStart(c rune) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && (isIdentStart(rune(l.src[l.pos])) || l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("sql: malformed number at offset %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}

// lexParam tokenizes a $n placeholder: $ followed by one or more digits.
func (l *lexer) lexParam() error {
	start := l.pos
	l.pos++ // $
	digits := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos == digits {
		return fmt.Errorf("sql: $ must be followed by a parameter number at offset %d", start)
	}
	l.tokens = append(l.tokens, token{kind: tokParam, text: l.src[digits:l.pos], pos: start})
	return nil
}

var twoCharPunct = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexPunct() error {
	if l.pos+1 < len(l.src) && twoCharPunct[l.src[l.pos:l.pos+2]] {
		l.tokens = append(l.tokens, token{kind: tokPunct, text: l.src[l.pos : l.pos+2], pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';', '?':
		l.tokens = append(l.tokens, token{kind: tokPunct, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
}
