package sql

import (
	"fmt"
	"strings"
	"sync"

	"oblidb/internal/core"
	"oblidb/internal/plan"
	"oblidb/internal/table"
)

// planCacheLimit bounds the statement cache. When full, the cache is
// cleared wholesale — a rare event for realistic workloads (which cycle
// through far fewer than 256 statement shapes), and simpler to reason
// about than LRU bookkeeping on the hot path.
const planCacheLimit = 256

// planEntry is one cached statement shape: the AST (immutable after
// parse, shared freely across goroutines), its parameter arity, and —
// once the statement has executed — its compiled physical plan.
// compiledEpoch records the catalog epoch the plan was compiled under;
// DDL bumps the executor's epoch, so stale plans recompile instead of
// referencing dropped or re-created tables.
type planEntry struct {
	stmt      Statement
	numParams int

	// Guarded by Executor.mu.
	compiled      plan.Node
	compiledEpoch uint64
}

// Executor runs SQL statements against an ObliDB engine. It keeps a
// plan cache keyed by statement *shape* — the placeholder-normalized
// String() rendering — so re-executions of a parameterized statement
// skip parsing AND plan compilation, and spelling variants (?, $1,
// extra whitespace) of one shape share an entry. Nothing about an
// argument value is in the key or the compiled plan; the cache cannot
// leak parameters by its hit pattern because hits depend only on
// statement text.
type Executor struct {
	db *core.DB

	mu           sync.Mutex
	plans        map[string]*planEntry // canonical shape → entry
	bySrc        map[string]string     // raw source text → canonical shape
	hits         uint64
	misses       uint64
	compiles     uint64 // plan compilations performed
	compileSkips uint64 // executions that reused a compiled plan
}

// New wraps a database in a SQL executor.
func New(db *core.DB) *Executor {
	return &Executor{
		db:    db,
		plans: make(map[string]*planEntry),
		bySrc: make(map[string]string),
	}
}

// DB returns the underlying engine.
func (x *Executor) DB() *core.DB { return x.db }

// Execute parses and runs one statement with no bound arguments. DDL
// and DML return a one-row result reporting the affected count.
func (x *Executor) Execute(src string) (*core.Result, error) {
	return x.ExecuteArgs(src, nil)
}

// ExecuteArgs parses (or recalls from the plan cache) one statement and
// executes it with the given arguments bound to its placeholders.
func (x *Executor) ExecuteArgs(src string, args []table.Value) (*core.Result, error) {
	entry, err := x.plan(src, false)
	if err != nil {
		return nil, err
	}
	return x.execEntry(entry, args)
}

// plan returns the cached entry for src, parsing and caching on miss.
// The returned statement is shared: callers must treat it as immutable.
//
// Zero-placeholder statements are cached only when cacheLiterals is set
// (the Prepare path): a one-shot literal statement — a bulk load of
// distinct INSERTs, say — is by construction never re-executed by
// shape, and letting such statements fill the cache would evict the
// parameterized shapes that plan-once/execute-many exists for.
func (x *Executor) plan(src string, cacheLiterals bool) (*planEntry, error) {
	x.mu.Lock()
	if key, ok := x.bySrc[src]; ok {
		if entry, ok := x.plans[key]; ok {
			x.hits++
			x.mu.Unlock()
			return entry, nil
		}
	}
	x.mu.Unlock()

	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	entry := &planEntry{stmt: stmt, numParams: NumParams(stmt)}
	key := stmt.(fmt.Stringer).String()

	x.mu.Lock()
	x.misses++
	if existing, ok := x.plans[key]; ok {
		// Another spelling (or one-shot re-send) of a cached shape:
		// share its parse and compiled plan.
		entry = existing
	} else if entry.numParams == 0 && !cacheLiterals {
		x.mu.Unlock()
		return entry, nil
	} else {
		if len(x.plans) >= planCacheLimit {
			x.plans = make(map[string]*planEntry)
			x.bySrc = make(map[string]string)
		}
		x.plans[key] = entry
	}
	if len(x.bySrc) < 4*planCacheLimit {
		x.bySrc[src] = key
	}
	x.mu.Unlock()
	return entry, nil
}

// entryFor finds or creates the cache entry sharing stmt's shape, so
// raw-statement callers (ExecuteStmt, EXPLAIN) reuse one compiled plan
// per shape. cacheLiterals follows plan's policy: without it, a
// zero-placeholder statement gets a transient entry instead of
// occupying (and at the limit, wiping) the shared cache — the EXPLAIN
// path passes false so a stream of distinct literal EXPLAINs cannot
// evict the plan-once/execute-many shapes.
func (x *Executor) entryFor(stmt Statement, cacheLiterals bool) *planEntry {
	key := stmt.(fmt.Stringer).String()
	x.mu.Lock()
	defer x.mu.Unlock()
	if entry, ok := x.plans[key]; ok {
		return entry
	}
	entry := &planEntry{stmt: stmt, numParams: NumParams(stmt)}
	if entry.numParams == 0 && !cacheLiterals {
		return entry
	}
	if len(x.plans) >= planCacheLimit {
		x.plans = make(map[string]*planEntry)
		x.bySrc = make(map[string]string)
	}
	x.plans[key] = entry
	return entry
}

// Prepared is a cached statement shape ready for repeated execution:
// parse and compiled plan are shared across every execution of the
// shape, only argument binding is per-call.
type Prepared struct {
	x     *Executor
	entry *planEntry
}

// Prepare parses (or recalls) a statement shape for repeated execution.
func (x *Executor) Prepare(src string) (*Prepared, error) {
	entry, err := x.plan(src, true)
	if err != nil {
		return nil, err
	}
	return &Prepared{x: x, entry: entry}, nil
}

// PrepareOneShot is Prepare for single executions: literal-only
// statements skip the shape cache so one-shot statements cannot evict
// the plan-once/execute-many shapes.
func (x *Executor) PrepareOneShot(src string) (*Prepared, error) {
	entry, err := x.plan(src, false)
	if err != nil {
		return nil, err
	}
	return &Prepared{x: x, entry: entry}, nil
}

// Stmt returns the prepared statement's AST (immutable; callers must
// not modify it).
func (p *Prepared) Stmt() Statement { return p.entry.stmt }

// NumParams reports how many arguments Exec requires.
func (p *Prepared) NumParams() int { return p.entry.numParams }

// Exec runs the prepared statement with args bound to its placeholders.
func (p *Prepared) Exec(args []table.Value) (*core.Result, error) {
	return p.x.execEntry(p.entry, args)
}

// Stmt returns the cached parsed statement and its parameter count for
// src. It is the prepare step paired with ExecuteBound; Prepare is the
// richer form that also hands back the shape's compiled-plan entry.
func (x *Executor) Stmt(src string) (Statement, int, error) {
	entry, err := x.plan(src, true)
	if err != nil {
		return nil, 0, err
	}
	return entry.stmt, entry.numParams, nil
}

// PlanCacheStats reports the cache's size and hit/miss counters.
func (x *Executor) PlanCacheStats() (entries int, hits, misses uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.plans), x.hits, x.misses
}

// CacheStats is the executor's full self-report: parse-cache size and
// hit/miss counters plus compiled-plan counters. CompileSkips counts
// executions that replayed a cached compiled plan without re-planning —
// the number the cache-hit fast path is measured by.
type CacheStats struct {
	Entries      int
	Hits, Misses uint64
	Compiles     uint64
	CompileSkips uint64
}

// CacheStats reports the executor's counters.
func (x *Executor) CacheStats() CacheStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return CacheStats{
		Entries: len(x.plans),
		Hits:    x.hits, Misses: x.misses,
		Compiles: x.compiles, CompileSkips: x.compileSkips,
	}
}

func (x *Executor) execEntry(entry *planEntry, args []table.Value) (*core.Result, error) {
	if len(args) != entry.numParams {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d argument(s)", entry.numParams, len(args))
	}
	return x.runEntry(entry, args)
}

// ExecuteStmt runs an already-parsed statement with no bound arguments.
// Servers use it to execute prepared statements without re-parsing;
// parsing happens inside the enclave and touches no untrusted memory,
// so splitting it from execution changes nothing about the trace.
func (x *Executor) ExecuteStmt(stmt Statement) (*core.Result, error) {
	return x.ExecuteStmtArgs(stmt, nil)
}

// ExecuteStmtArgs runs an already-parsed statement with arguments bound
// to its placeholders. Binding is strict: the argument count must equal
// the statement's parameter count. The values are visible only to the
// in-enclave expression evaluator — never to the planner or any code
// that touches untrusted memory — so two executions of one statement
// shape with different arguments produce identical traces whenever the
// public parameters (table and output sizes) match.
func (x *Executor) ExecuteStmtArgs(stmt Statement, args []table.Value) (*core.Result, error) {
	return x.ExecuteBound(stmt, NumParams(stmt), args)
}

// ExecuteBound is ExecuteStmtArgs for callers that computed the
// statement's parameter count once at prepare time. It looks the
// statement's cache entry up by shape (one String render per call) so
// repeated executions share a compiled plan; callers on a hot path
// should hold a *Prepared instead, which pins the entry and skips the
// lookup entirely. numParams must be NumParams(stmt).
func (x *Executor) ExecuteBound(stmt Statement, numParams int, args []table.Value) (*core.Result, error) {
	if len(args) != numParams {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d argument(s)", numParams, len(args))
	}
	// cacheLiterals=false: like one-shot Execute, a literal statement
	// arriving here must not occupy (or at the limit, wipe) the shared
	// shape cache; cached shapes are still found and replayed.
	return x.runEntry(x.entryFor(stmt, false), args)
}

// runEntry dispatches after arity checking: DDL and EXPLAIN execute
// directly (they are catalog operations), everything else compiles into
// (or replays) the entry's physical plan and runs it through the
// engine's plan interpreter.
func (x *Executor) runEntry(entry *planEntry, args []table.Value) (*core.Result, error) {
	switch s := entry.stmt.(type) {
	case *CreateTable:
		// DDL invalidates compiled plans via the engine's catalog epoch
		// (bumped inside CreateTable/DropTable, whichever surface issues
		// them).
		return x.createTable(s)
	case *DropTable:
		if err := x.db.DropTable(s.Name); err != nil {
			return nil, err
		}
		return affected(0), nil
	case *Explain:
		return x.explainStmt(s)
	}
	root, err := x.compiledPlan(entry)
	if err != nil {
		return nil, err
	}
	return x.db.ExecutePlan(root, newBinder(args))
}

// compiledPlan returns the entry's compiled plan, compiling on first
// execution (or after DDL moved the engine's catalog epoch, voiding
// catalog-derived decisions like access paths and join splits) and
// replaying it afterwards.
func (x *Executor) compiledPlan(entry *planEntry) (plan.Node, error) {
	epoch := x.db.CatalogEpoch()
	x.mu.Lock()
	if entry.compiled != nil && entry.compiledEpoch == epoch {
		x.compileSkips++
		root := entry.compiled
		x.mu.Unlock()
		return root, nil
	}
	x.mu.Unlock()

	root, err := x.compile(entry.stmt)
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	x.compiles++
	entry.compiled, entry.compiledEpoch = root, epoch
	x.mu.Unlock()
	return root, nil
}

// explainStmt renders the inner statement's physical plan. A
// parameterized (or already-cached) shape shares its entry with later
// executions, so EXPLAIN shows exactly the plan the cache serves;
// literal one-shot shapes stay out of the cache, like every other
// one-shot. Annotation and rendering run together under the engine
// mutex (ExplainPlan) because the plan is shared.
func (x *Executor) explainStmt(s *Explain) (*core.Result, error) {
	entry := x.entryFor(s.Stmt, false)
	root, err := x.compiledPlan(entry)
	if err != nil {
		return nil, err
	}
	res := &core.Result{Cols: []string{"plan"}}
	for _, line := range x.db.ExplainPlan(root) {
		res.Rows = append(res.Rows, table.Row{table.Str(line)})
	}
	return res, nil
}

func affected(n int) *core.Result {
	return &core.Result{Cols: []string{"affected"}, Rows: []table.Row{{table.Int(int64(n))}}, Affected: true}
}

func (x *Executor) createTable(s *CreateTable) (*core.Result, error) {
	schema, err := table.NewSchema(s.Columns...)
	if err != nil {
		return nil, err
	}
	kind := s.Kind
	if s.IndexCol != "" && kind == core.KindFlat {
		if s.UsingIndex {
			kind = core.KindIndexed
		} else {
			kind = core.KindBoth
		}
	}
	_, err = x.db.CreateTable(s.Name, schema, core.TableOptions{
		Kind:             kind,
		KeyColumn:        s.IndexCol,
		Capacity:         s.Capacity,
		ObliviousInserts: s.ObliviousI,
	})
	if err != nil {
		return nil, err
	}
	return affected(0), nil
}

func resolveJoinCols(s *Select, lt, rt *core.Table) (string, string, error) {
	l, r := s.Join.LeftCol, s.Join.RightCol
	// Allow either order of qualification: ON a.x = b.y or ON b.y = a.x.
	inLeft := func(c *ColumnRef) bool {
		if c.Table != "" {
			return strings.EqualFold(c.Table, s.From)
		}
		return lt.Schema().ColIndex(c.Column) >= 0
	}
	if inLeft(l) {
		return l.Column, r.Column, nil
	}
	if inLeft(r) {
		return r.Column, l.Column, nil
	}
	return "", "", fmt.Errorf("sql: cannot resolve join columns %q/%q", l.Column, r.Column)
}

func andExprs(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// exprEqual compares expressions structurally.
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.Val.Equal(y.Val)
	case *ColumnRef:
		y, ok := b.(*ColumnRef)
		return ok && strings.EqualFold(x.Column, y.Column) && strings.EqualFold(x.Table, y.Table)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Placeholder:
		y, ok := b.(*Placeholder)
		return ok && x.Index == y.Index
	}
	return false
}
