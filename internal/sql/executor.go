package sql

import (
	"fmt"
	"strings"
	"sync"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// Executor runs SQL statements against an ObliDB engine.
type Executor struct {
	db *core.DB
}

// New wraps a database in a SQL executor.
func New(db *core.DB) *Executor { return &Executor{db: db} }

// DB returns the underlying engine.
func (x *Executor) DB() *core.DB { return x.db }

// Execute parses and runs one statement. DDL and DML return a one-row
// result reporting the affected count.
func (x *Executor) Execute(src string) (*core.Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return x.ExecuteStmt(stmt)
}

// ExecuteStmt runs an already-parsed statement. Servers use it to
// execute prepared statements without re-parsing; parsing happens inside
// the enclave and touches no untrusted memory, so splitting it from
// execution changes nothing about the trace.
func (x *Executor) ExecuteStmt(stmt Statement) (*core.Result, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return x.createTable(s)
	case *Insert:
		return x.insert(s)
	case *Select:
		return x.selectStmt(s)
	case *Update:
		return x.update(s)
	case *Delete:
		return x.delete(s)
	case *DropTable:
		if err := x.db.DropTable(s.Name); err != nil {
			return nil, err
		}
		return affected(0), nil
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
}

func affected(n int) *core.Result {
	return &core.Result{Cols: []string{"affected"}, Rows: []table.Row{{table.Int(int64(n))}}}
}

func (x *Executor) createTable(s *CreateTable) (*core.Result, error) {
	schema, err := table.NewSchema(s.Columns...)
	if err != nil {
		return nil, err
	}
	kind := s.Kind
	if s.IndexCol != "" && kind == core.KindFlat {
		kind = core.KindBoth
	}
	_, err = x.db.CreateTable(s.Name, schema, core.TableOptions{
		Kind:             kind,
		KeyColumn:        s.IndexCol,
		Capacity:         s.Capacity,
		ObliviousInserts: s.ObliviousI,
	})
	if err != nil {
		return nil, err
	}
	return affected(0), nil
}

func (x *Executor) insert(s *Insert) (*core.Result, error) {
	if err := x.db.Insert(s.Name, s.Rows...); err != nil {
		return nil, err
	}
	return affected(len(s.Rows)), nil
}

func (x *Executor) update(s *Update) (*core.Result, error) {
	t, err := x.db.Table(s.Name)
	if err != nil {
		return nil, err
	}
	res := newResolver(t.Schema())
	var evalErr error
	pred := res.pred(s.Where, &evalErr)
	setCols := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		c := t.Schema().ColIndex(set.Column)
		if c < 0 {
			return nil, fmt.Errorf("sql: no column %q", set.Column)
		}
		setCols[i] = c
	}
	upd := func(r table.Row) table.Row {
		for i, set := range s.Sets {
			v, err := res.eval(set.Value, r)
			if err != nil {
				if evalErr == nil {
					evalErr = err
				}
				return r
			}
			r[setCols[i]] = v
		}
		return r
	}
	var key *core.KeyRange
	if t.KeyColumn() >= 0 && s.Where != nil {
		key = keyRange(s.Where, t.Schema().Col(t.KeyColumn()).Name)
	}
	n, err := x.db.Update(s.Name, pred, upd, key)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return affected(n), nil
}

func (x *Executor) delete(s *Delete) (*core.Result, error) {
	t, err := x.db.Table(s.Name)
	if err != nil {
		return nil, err
	}
	res := newResolver(t.Schema())
	var evalErr error
	pred := res.pred(s.Where, &evalErr)
	var key *core.KeyRange
	if t.KeyColumn() >= 0 && s.Where != nil {
		key = keyRange(s.Where, t.Schema().Col(t.KeyColumn()).Name)
	}
	n, err := x.db.Delete(s.Name, pred, key)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return affected(n), nil
}

func (x *Executor) selectStmt(s *Select) (*core.Result, error) {
	if s.Join != nil {
		return x.selectJoin(s)
	}
	t, err := x.db.Table(s.From)
	if err != nil {
		return nil, err
	}
	return x.selectFrom(s, t, s.From)
}

// selectFrom runs a single-table SELECT over the given table handle.
func (x *Executor) selectFrom(s *Select, t *core.Table, fromName string) (*core.Result, error) {
	res := newResolver(t.Schema())
	res.leftTable = fromName
	var evalErr error
	pred := res.pred(s.Where, &evalErr)

	var key *core.KeyRange
	if t.KeyColumn() >= 0 && s.Where != nil {
		key = keyRange(s.Where, t.Schema().Col(t.KeyColumn()).Name)
	}

	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}

	switch {
	case s.GroupBy != nil:
		out, err := x.groupSelect(s, t, res, pred, key)
		if evalErr != nil {
			return nil, evalErr
		}
		return out, err
	case hasAgg:
		specs, names, err := x.aggSpecs(s)
		if err != nil {
			return nil, err
		}
		out, err := x.db.AggregateTable(t, pred, specs, key)
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		out.Cols = names
		return out, nil
	default:
		opts := core.SelectOptions{KeyRange: key, Force: s.Force}
		tmp, err := x.db.SelectTable(t, pred, opts)
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		raw, err := x.db.Collect(tmp)
		if err != nil {
			return nil, err
		}
		return x.project(s, res, raw)
	}
}

// aggSpecs converts the select items of an aggregate query.
func (x *Executor) aggSpecs(s *Select) ([]core.AggregateSpec, []string, error) {
	specs := make([]core.AggregateSpec, 0, len(s.Items))
	names := make([]string, 0, len(s.Items))
	for _, item := range s.Items {
		if item.Agg == nil {
			return nil, nil, fmt.Errorf("sql: mixing aggregates and plain columns requires GROUP BY")
		}
		specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: item.Agg.Column})
		name := item.Alias
		if name == "" {
			name = item.Agg.Kind.String()
			if item.Agg.Column != "" {
				name += "(" + item.Agg.Column + ")"
			} else {
				name += "(*)"
			}
		}
		names = append(names, name)
	}
	return specs, names, nil
}

// groupSelect lowers GROUP BY queries onto the grouped-aggregation
// operator. Select items must be the group expression or aggregates.
func (x *Executor) groupSelect(s *Select, t *core.Table, res *resolver, pred table.Pred, key *core.KeyRange) (*core.Result, error) {
	var groupErr error
	groupKey := groupKeyFunc(res, s.GroupBy, &groupErr)
	var specs []core.AggregateSpec
	type outCol struct {
		isGroup bool
		aggIdx  int
		name    string
	}
	var outs []outCol
	for _, item := range s.Items {
		if item.Agg != nil {
			specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: item.Agg.Column})
			name := item.Alias
			if name == "" {
				name = item.Agg.Kind.String() + "(" + item.Agg.Column + ")"
				if item.Agg.Column == "" {
					name = "COUNT(*)"
				}
			}
			outs = append(outs, outCol{aggIdx: len(specs) - 1, name: name})
			continue
		}
		// A non-aggregate item must be the grouping expression itself.
		if !exprEqual(item.Expr, s.GroupBy) {
			return nil, fmt.Errorf("sql: non-aggregate select item must match GROUP BY expression")
		}
		name := item.Alias
		if name == "" {
			name = "group"
		}
		outs = append(outs, outCol{isGroup: true, name: name})
	}
	raw, err := x.db.GroupAggregate(t.Name(), pred, groupKey, specs, key)
	if err != nil {
		return nil, err
	}
	if groupErr != nil {
		return nil, groupErr
	}
	// Reorder engine output ([group, aggs...]) to the select list.
	result := &core.Result{Cols: make([]string, len(outs))}
	for i, oc := range outs {
		result.Cols[i] = oc.name
	}
	for _, r := range raw.Rows {
		row := make(table.Row, len(outs))
		for i, oc := range outs {
			if oc.isGroup {
				row[i] = r[0]
			} else {
				row[i] = r[1+oc.aggIdx]
			}
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// selectJoin lowers JOIN queries: push single-side WHERE conjuncts into
// oblivious pre-filters, join, then run the residual select (and any
// grouping) over the intermediate table.
func (x *Executor) selectJoin(s *Select) (*core.Result, error) {
	lt, err := x.db.Table(s.From)
	if err != nil {
		return nil, err
	}
	rt, err := x.db.Table(s.Join.Right)
	if err != nil {
		return nil, err
	}
	lcol, rcol, err := resolveJoinCols(s, lt, rt)
	if err != nil {
		return nil, err
	}

	// Split WHERE into per-side filters and a residual.
	var leftPred, rightPred table.Pred
	var residual []Expr
	var evalErr error
	lres := newResolver(lt.Schema())
	rres := newResolver(rt.Schema())
	for _, c := range flattenAnd(s.Where) {
		if c == nil {
			continue
		}
		switch {
		case exprOnlyUses(c, lt.Schema(), s.From):
			leftPred = andPred(leftPred, lres.pred(c, &evalErr))
		case exprOnlyUses(c, rt.Schema(), s.Join.Right):
			rightPred = andPred(rightPred, rres.pred(c, &evalErr))
		default:
			residual = append(residual, c)
		}
	}

	joined, err := x.db.JoinTable(s.From, s.Join.Right, lcol, rcol, core.JoinOptions{
		FilterLeft:  leftPred,
		FilterRight: rightPred,
		Force:       s.Join.ForceJoinAlgorithm,
	})
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}

	// Run the remainder of the query over the joined table.
	rest := &Select{
		Items:   s.Items,
		Star:    s.Star,
		From:    joined.Name(),
		Where:   andExprs(residual),
		GroupBy: s.GroupBy,
		Force:   s.Force,
	}
	jres := newResolver(joined.Schema())
	jres.leftTable = s.From
	jres.rightTable = s.Join.Right
	jres.rightStart = lt.Schema().NumColumns()
	return x.selectFromJoined(rest, joined, jres)
}

// selectFromJoined is selectFrom with a prepared join-aware resolver.
func (x *Executor) selectFromJoined(s *Select, t *core.Table, res *resolver) (*core.Result, error) {
	var evalErr error
	pred := res.pred(s.Where, &evalErr)
	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	switch {
	case s.GroupBy != nil:
		var groupErr error
		groupKey := groupKeyFunc(res, s.GroupBy, &groupErr)
		var specs []core.AggregateSpec
		var outs []struct {
			isGroup bool
			idx     int
			name    string
		}
		for _, item := range s.Items {
			if item.Agg != nil {
				specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: joinAggColumn(item.Agg.Column, res)})
				name := item.Alias
				if name == "" {
					name = item.Agg.Kind.String() + "(" + item.Agg.Column + ")"
				}
				outs = append(outs, struct {
					isGroup bool
					idx     int
					name    string
				}{idx: len(specs) - 1, name: name})
				continue
			}
			if !exprEqual(item.Expr, s.GroupBy) {
				return nil, fmt.Errorf("sql: non-aggregate select item must match GROUP BY expression")
			}
			name := item.Alias
			if name == "" {
				name = "group"
			}
			outs = append(outs, struct {
				isGroup bool
				idx     int
				name    string
			}{isGroup: true, name: name})
		}
		tmp, err := x.db.GroupAggregateTable(t, pred, groupKey, specs, nil)
		if err != nil {
			return nil, err
		}
		if groupErr != nil {
			return nil, groupErr
		}
		if evalErr != nil {
			return nil, evalErr
		}
		raw, err := x.db.Collect(tmp)
		if err != nil {
			return nil, err
		}
		result := &core.Result{Cols: make([]string, len(outs))}
		for i, oc := range outs {
			result.Cols[i] = oc.name
		}
		for _, r := range raw.Rows {
			row := make(table.Row, len(outs))
			for i, oc := range outs {
				if oc.isGroup {
					row[i] = r[0]
				} else {
					row[i] = r[1+oc.idx]
				}
			}
			result.Rows = append(result.Rows, row)
		}
		return result, nil
	case hasAgg:
		specs := make([]core.AggregateSpec, 0, len(s.Items))
		names := make([]string, 0, len(s.Items))
		for _, item := range s.Items {
			if item.Agg == nil {
				return nil, fmt.Errorf("sql: mixing aggregates and plain columns requires GROUP BY")
			}
			specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: joinAggColumn(item.Agg.Column, res)})
			name := item.Alias
			if name == "" {
				name = item.Agg.Kind.String() + "(" + item.Agg.Column + ")"
			}
			names = append(names, name)
		}
		out, err := x.db.AggregateTable(t, pred, specs, nil)
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		out.Cols = names
		return out, nil
	default:
		tmp, err := x.db.SelectTable(t, pred, core.SelectOptions{Force: s.Force})
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		raw, err := x.db.Collect(tmp)
		if err != nil {
			return nil, err
		}
		return x.project(s, res, raw)
	}
}

// joinAggColumn resolves an aggregate's column name within the joined
// schema (right-side duplicates carry the r_ prefix).
func joinAggColumn(col string, res *resolver) string {
	if res.schema.ColIndex(col) >= 0 {
		return col
	}
	if res.schema.ColIndex("r_"+col) >= 0 {
		return "r_" + col
	}
	return col
}

// project maps select items over collected rows (a trace-neutral,
// in-enclave computation).
func (x *Executor) project(s *Select, res *resolver, raw *core.Result) (*core.Result, error) {
	if s.Star || len(s.Items) == 0 {
		return raw, nil
	}
	// Rebind the resolver to the raw result's column order.
	cols := make([]table.Column, len(raw.Cols))
	for i, name := range raw.Cols {
		cols[i] = table.Column{Name: name, Kind: table.KindInt}
	}
	out := &core.Result{Cols: make([]string, len(s.Items))}
	for i, item := range s.Items {
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ColumnRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out.Cols[i] = name
	}
	for _, r := range raw.Rows {
		row := make(table.Row, len(s.Items))
		for i, item := range s.Items {
			v, err := res.eval(item.Expr, r)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func resolveJoinCols(s *Select, lt, rt *core.Table) (string, string, error) {
	l, r := s.Join.LeftCol, s.Join.RightCol
	// Allow either order of qualification: ON a.x = b.y or ON b.y = a.x.
	inLeft := func(c *ColumnRef) bool {
		if c.Table != "" {
			return strings.EqualFold(c.Table, s.From)
		}
		return lt.Schema().ColIndex(c.Column) >= 0
	}
	if inLeft(l) {
		return l.Column, r.Column, nil
	}
	if inLeft(r) {
		return r.Column, l.Column, nil
	}
	return "", "", fmt.Errorf("sql: cannot resolve join columns %q/%q", l.Column, r.Column)
}

// groupKeyFunc compiles the GROUP BY expression into a core.GroupKey.
// Like resolver.pred, the error capture is mutex-guarded because the
// parallel grouped-aggregation operator calls it from several workers.
func groupKeyFunc(res *resolver, e Expr, errOut *error) core.GroupKey {
	var mu sync.Mutex
	return func(r table.Row) table.Value {
		v, err := res.eval(e, r)
		if err != nil {
			mu.Lock()
			if *errOut == nil {
				*errOut = err
			}
			mu.Unlock()
		}
		return v
	}
}

func andPred(a, b table.Pred) table.Pred {
	if a == nil {
		return b
	}
	return func(r table.Row) bool { return a(r) && b(r) }
}

func andExprs(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// exprEqual compares expressions structurally.
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.Val.Equal(y.Val)
	case *ColumnRef:
		y, ok := b.(*ColumnRef)
		return ok && strings.EqualFold(x.Column, y.Column) && strings.EqualFold(x.Table, y.Table)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
