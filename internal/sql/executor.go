package sql

import (
	"fmt"
	"strings"
	"sync"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

// planCacheLimit bounds the statement cache. When full, the cache is
// cleared wholesale — a rare event for realistic workloads (which cycle
// through far fewer than 256 statement shapes), and simpler to reason
// about than LRU bookkeeping on the hot path.
const planCacheLimit = 256

// planEntry is one cached parse: the statement AST (immutable after
// parse, shared freely across goroutines) plus its parameter arity.
type planEntry struct {
	stmt      Statement
	numParams int
}

// Executor runs SQL statements against an ObliDB engine. It keeps a
// plan cache keyed by statement *shape* — the placeholder-normalized
// String() rendering — so re-executions of a parameterized statement
// skip parsing, and spelling variants (?, $1, extra whitespace) of one
// shape share an entry. Nothing about an argument value is in the key;
// the cache cannot leak parameters by its hit pattern because hits
// depend only on statement text.
type Executor struct {
	db *core.DB

	mu     sync.Mutex
	plans  map[string]*planEntry // canonical shape → parse
	bySrc  map[string]string     // raw source text → canonical shape
	hits   uint64
	misses uint64
}

// New wraps a database in a SQL executor.
func New(db *core.DB) *Executor {
	return &Executor{
		db:    db,
		plans: make(map[string]*planEntry),
		bySrc: make(map[string]string),
	}
}

// DB returns the underlying engine.
func (x *Executor) DB() *core.DB { return x.db }

// Execute parses and runs one statement with no bound arguments. DDL
// and DML return a one-row result reporting the affected count.
func (x *Executor) Execute(src string) (*core.Result, error) {
	return x.ExecuteArgs(src, nil)
}

// ExecuteArgs parses (or recalls from the plan cache) one statement and
// executes it with the given arguments bound to its placeholders.
func (x *Executor) ExecuteArgs(src string, args []table.Value) (*core.Result, error) {
	entry, err := x.plan(src, false)
	if err != nil {
		return nil, err
	}
	return x.execEntry(entry, args)
}

// plan returns the cached parse of src, parsing and caching on miss.
// The returned statement is shared: callers must treat it as immutable.
//
// Zero-placeholder statements are cached only when cacheLiterals is set
// (the Prepare path): a one-shot literal statement — a bulk load of
// distinct INSERTs, say — is by construction never re-executed by
// shape, and letting such statements fill the cache would evict the
// parameterized shapes that plan-once/execute-many exists for.
func (x *Executor) plan(src string, cacheLiterals bool) (*planEntry, error) {
	x.mu.Lock()
	if key, ok := x.bySrc[src]; ok {
		if entry, ok := x.plans[key]; ok {
			x.hits++
			x.mu.Unlock()
			return entry, nil
		}
	}
	x.mu.Unlock()

	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	entry := &planEntry{stmt: stmt, numParams: NumParams(stmt)}
	key := stmt.(fmt.Stringer).String()

	x.mu.Lock()
	x.misses++
	if entry.numParams == 0 && !cacheLiterals {
		x.mu.Unlock()
		return entry, nil
	}
	if existing, ok := x.plans[key]; ok {
		// Another spelling of a shape already cached: share its parse.
		entry = existing
	} else {
		if len(x.plans) >= planCacheLimit {
			x.plans = make(map[string]*planEntry)
			x.bySrc = make(map[string]string)
		}
		x.plans[key] = entry
	}
	if len(x.bySrc) < 4*planCacheLimit {
		x.bySrc[src] = key
	}
	x.mu.Unlock()
	return entry, nil
}

// Stmt returns the cached parsed statement and its parameter count for
// src. It is the prepare step: pair it with ExecuteBound.
func (x *Executor) Stmt(src string) (Statement, int, error) {
	entry, err := x.plan(src, true)
	if err != nil {
		return nil, 0, err
	}
	return entry.stmt, entry.numParams, nil
}

// PlanCacheStats reports the cache's size and hit/miss counters.
func (x *Executor) PlanCacheStats() (entries int, hits, misses uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.plans), x.hits, x.misses
}

func (x *Executor) execEntry(entry *planEntry, args []table.Value) (*core.Result, error) {
	if len(args) != entry.numParams {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d argument(s)", entry.numParams, len(args))
	}
	return x.executeStmt(entry.stmt, args)
}

// ExecuteStmt runs an already-parsed statement with no bound arguments.
// Servers use it to execute prepared statements without re-parsing;
// parsing happens inside the enclave and touches no untrusted memory,
// so splitting it from execution changes nothing about the trace.
func (x *Executor) ExecuteStmt(stmt Statement) (*core.Result, error) {
	return x.ExecuteStmtArgs(stmt, nil)
}

// ExecuteStmtArgs runs an already-parsed statement with arguments bound
// to its placeholders. Binding is strict: the argument count must equal
// the statement's parameter count. The values are visible only to the
// in-enclave expression evaluator — never to the planner or any code
// that touches untrusted memory — so two executions of one statement
// shape with different arguments produce identical traces whenever the
// public parameters (table and output sizes) match.
func (x *Executor) ExecuteStmtArgs(stmt Statement, args []table.Value) (*core.Result, error) {
	return x.ExecuteBound(stmt, NumParams(stmt), args)
}

// ExecuteBound is ExecuteStmtArgs for callers that computed the
// statement's parameter count once at prepare time (Stmt, the server's
// per-session prepared shapes): it skips the per-execution AST walk on
// the hot path. numParams must be NumParams(stmt).
func (x *Executor) ExecuteBound(stmt Statement, numParams int, args []table.Value) (*core.Result, error) {
	if len(args) != numParams {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d argument(s)", numParams, len(args))
	}
	return x.executeStmt(stmt, args)
}

// executeStmt dispatches after arity checking.
func (x *Executor) executeStmt(stmt Statement, args []table.Value) (*core.Result, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return x.createTable(s)
	case *Insert:
		return x.insert(s, args)
	case *Select:
		return x.selectStmt(s, args)
	case *Update:
		return x.update(s, args)
	case *Delete:
		return x.delete(s, args)
	case *DropTable:
		if err := x.db.DropTable(s.Name); err != nil {
			return nil, err
		}
		return affected(0), nil
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
}

func affected(n int) *core.Result {
	return &core.Result{Cols: []string{"affected"}, Rows: []table.Row{{table.Int(int64(n))}}, Affected: true}
}

func (x *Executor) createTable(s *CreateTable) (*core.Result, error) {
	schema, err := table.NewSchema(s.Columns...)
	if err != nil {
		return nil, err
	}
	kind := s.Kind
	if s.IndexCol != "" && kind == core.KindFlat {
		kind = core.KindBoth
	}
	_, err = x.db.CreateTable(s.Name, schema, core.TableOptions{
		Kind:             kind,
		KeyColumn:        s.IndexCol,
		Capacity:         s.Capacity,
		ObliviousInserts: s.ObliviousI,
	})
	if err != nil {
		return nil, err
	}
	return affected(0), nil
}

func (x *Executor) insert(s *Insert, args []table.Value) (*core.Result, error) {
	rows := make([]table.Row, len(s.Values))
	for i, exprs := range s.Values {
		row := make(table.Row, len(exprs))
		for j, e := range exprs {
			v, err := constEval(e, args)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		rows[i] = row
	}
	if err := x.db.Insert(s.Name, rows...); err != nil {
		return nil, err
	}
	return affected(len(rows)), nil
}

func (x *Executor) update(s *Update, args []table.Value) (*core.Result, error) {
	t, err := x.db.Table(s.Name)
	if err != nil {
		return nil, err
	}
	res := newResolver(t.Schema()).withArgs(args)
	var evalErr error
	pred := res.pred(s.Where, &evalErr)
	setCols := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		c := t.Schema().ColIndex(set.Column)
		if c < 0 {
			return nil, fmt.Errorf("sql: no column %q", set.Column)
		}
		setCols[i] = c
	}
	upd := func(r table.Row) table.Row {
		for i, set := range s.Sets {
			v, err := res.eval(set.Value, r)
			if err != nil {
				if evalErr == nil {
					evalErr = err
				}
				return r
			}
			r[setCols[i]] = v
		}
		return r
	}
	var key *core.KeyRange
	if t.KeyColumn() >= 0 && s.Where != nil {
		key = keyRange(s.Where, t.Schema().Col(t.KeyColumn()).Name)
	}
	n, err := x.db.Update(s.Name, pred, upd, key)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return affected(n), nil
}

func (x *Executor) delete(s *Delete, args []table.Value) (*core.Result, error) {
	t, err := x.db.Table(s.Name)
	if err != nil {
		return nil, err
	}
	res := newResolver(t.Schema()).withArgs(args)
	var evalErr error
	pred := res.pred(s.Where, &evalErr)
	var key *core.KeyRange
	if t.KeyColumn() >= 0 && s.Where != nil {
		key = keyRange(s.Where, t.Schema().Col(t.KeyColumn()).Name)
	}
	n, err := x.db.Delete(s.Name, pred, key)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return affected(n), nil
}

func (x *Executor) selectStmt(s *Select, args []table.Value) (*core.Result, error) {
	if s.Join != nil {
		return x.selectJoin(s, args)
	}
	t, err := x.db.Table(s.From)
	if err != nil {
		return nil, err
	}
	return x.selectFrom(s, t, s.From, args)
}

// selectFrom runs a single-table SELECT over the given table handle.
func (x *Executor) selectFrom(s *Select, t *core.Table, fromName string, args []table.Value) (*core.Result, error) {
	res := newResolver(t.Schema()).withArgs(args)
	res.leftTable = fromName
	var evalErr error
	pred := res.pred(s.Where, &evalErr)

	var key *core.KeyRange
	if t.KeyColumn() >= 0 && s.Where != nil {
		key = keyRange(s.Where, t.Schema().Col(t.KeyColumn()).Name)
	}

	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}

	switch {
	case s.GroupBy != nil:
		out, err := x.groupSelect(s, t, res, pred, key)
		if evalErr != nil {
			return nil, evalErr
		}
		return out, err
	case hasAgg:
		specs, names, err := x.aggSpecs(s)
		if err != nil {
			return nil, err
		}
		out, err := x.db.AggregateTable(t, pred, specs, key)
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		out.Cols = names
		return out, nil
	default:
		opts := core.SelectOptions{KeyRange: key, Force: s.Force}
		tmp, err := x.db.SelectTable(t, pred, opts)
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		raw, err := x.db.Collect(tmp)
		if err != nil {
			return nil, err
		}
		return x.project(s, res, raw)
	}
}

// aggSpecs converts the select items of an aggregate query.
func (x *Executor) aggSpecs(s *Select) ([]core.AggregateSpec, []string, error) {
	specs := make([]core.AggregateSpec, 0, len(s.Items))
	names := make([]string, 0, len(s.Items))
	for _, item := range s.Items {
		if item.Agg == nil {
			return nil, nil, fmt.Errorf("sql: mixing aggregates and plain columns requires GROUP BY")
		}
		specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: item.Agg.Column})
		name := item.Alias
		if name == "" {
			name = item.Agg.Kind.String()
			if item.Agg.Column != "" {
				name += "(" + item.Agg.Column + ")"
			} else {
				name += "(*)"
			}
		}
		names = append(names, name)
	}
	return specs, names, nil
}

// groupSelect lowers GROUP BY queries onto the grouped-aggregation
// operator. Select items must be the group expression or aggregates.
func (x *Executor) groupSelect(s *Select, t *core.Table, res *resolver, pred table.Pred, key *core.KeyRange) (*core.Result, error) {
	var groupErr error
	groupKey := groupKeyFunc(res, s.GroupBy, &groupErr)
	var specs []core.AggregateSpec
	type outCol struct {
		isGroup bool
		aggIdx  int
		name    string
	}
	var outs []outCol
	for _, item := range s.Items {
		if item.Agg != nil {
			specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: item.Agg.Column})
			name := item.Alias
			if name == "" {
				name = item.Agg.Kind.String() + "(" + item.Agg.Column + ")"
				if item.Agg.Column == "" {
					name = "COUNT(*)"
				}
			}
			outs = append(outs, outCol{aggIdx: len(specs) - 1, name: name})
			continue
		}
		// A non-aggregate item must be the grouping expression itself.
		if !exprEqual(item.Expr, s.GroupBy) {
			return nil, fmt.Errorf("sql: non-aggregate select item must match GROUP BY expression")
		}
		name := item.Alias
		if name == "" {
			name = "group"
		}
		outs = append(outs, outCol{isGroup: true, name: name})
	}
	raw, err := x.db.GroupAggregate(t.Name(), pred, groupKey, specs, key)
	if err != nil {
		return nil, err
	}
	if groupErr != nil {
		return nil, groupErr
	}
	// Reorder engine output ([group, aggs...]) to the select list.
	result := &core.Result{Cols: make([]string, len(outs))}
	for i, oc := range outs {
		result.Cols[i] = oc.name
	}
	for _, r := range raw.Rows {
		row := make(table.Row, len(outs))
		for i, oc := range outs {
			if oc.isGroup {
				row[i] = r[0]
			} else {
				row[i] = r[1+oc.aggIdx]
			}
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// selectJoin lowers JOIN queries: push single-side WHERE conjuncts into
// oblivious pre-filters, join, then run the residual select (and any
// grouping) over the intermediate table.
func (x *Executor) selectJoin(s *Select, args []table.Value) (*core.Result, error) {
	lt, err := x.db.Table(s.From)
	if err != nil {
		return nil, err
	}
	rt, err := x.db.Table(s.Join.Right)
	if err != nil {
		return nil, err
	}
	lcol, rcol, err := resolveJoinCols(s, lt, rt)
	if err != nil {
		return nil, err
	}

	// Split WHERE into per-side filters and a residual.
	var leftPred, rightPred table.Pred
	var residual []Expr
	var evalErr error
	lres := newResolver(lt.Schema()).withArgs(args)
	rres := newResolver(rt.Schema()).withArgs(args)
	for _, c := range flattenAnd(s.Where) {
		if c == nil {
			continue
		}
		switch {
		case exprOnlyUses(c, lt.Schema(), s.From):
			leftPred = andPred(leftPred, lres.pred(c, &evalErr))
		case exprOnlyUses(c, rt.Schema(), s.Join.Right):
			rightPred = andPred(rightPred, rres.pred(c, &evalErr))
		default:
			residual = append(residual, c)
		}
	}

	joined, err := x.db.JoinTable(s.From, s.Join.Right, lcol, rcol, core.JoinOptions{
		FilterLeft:  leftPred,
		FilterRight: rightPred,
		Force:       s.Join.ForceJoinAlgorithm,
	})
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}

	// Run the remainder of the query over the joined table.
	rest := &Select{
		Items:   s.Items,
		Star:    s.Star,
		From:    joined.Name(),
		Where:   andExprs(residual),
		GroupBy: s.GroupBy,
		Force:   s.Force,
	}
	jres := newResolver(joined.Schema()).withArgs(args)
	jres.leftTable = s.From
	jres.rightTable = s.Join.Right
	jres.rightStart = lt.Schema().NumColumns()
	return x.selectFromJoined(rest, joined, jres)
}

// selectFromJoined is selectFrom with a prepared join-aware resolver.
func (x *Executor) selectFromJoined(s *Select, t *core.Table, res *resolver) (*core.Result, error) {
	var evalErr error
	pred := res.pred(s.Where, &evalErr)
	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}
	switch {
	case s.GroupBy != nil:
		var groupErr error
		groupKey := groupKeyFunc(res, s.GroupBy, &groupErr)
		var specs []core.AggregateSpec
		var outs []struct {
			isGroup bool
			idx     int
			name    string
		}
		for _, item := range s.Items {
			if item.Agg != nil {
				specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: joinAggColumn(item.Agg.Column, res)})
				name := item.Alias
				if name == "" {
					name = item.Agg.Kind.String() + "(" + item.Agg.Column + ")"
				}
				outs = append(outs, struct {
					isGroup bool
					idx     int
					name    string
				}{idx: len(specs) - 1, name: name})
				continue
			}
			if !exprEqual(item.Expr, s.GroupBy) {
				return nil, fmt.Errorf("sql: non-aggregate select item must match GROUP BY expression")
			}
			name := item.Alias
			if name == "" {
				name = "group"
			}
			outs = append(outs, struct {
				isGroup bool
				idx     int
				name    string
			}{isGroup: true, name: name})
		}
		tmp, err := x.db.GroupAggregateTable(t, pred, groupKey, specs, nil)
		if err != nil {
			return nil, err
		}
		if groupErr != nil {
			return nil, groupErr
		}
		if evalErr != nil {
			return nil, evalErr
		}
		raw, err := x.db.Collect(tmp)
		if err != nil {
			return nil, err
		}
		result := &core.Result{Cols: make([]string, len(outs))}
		for i, oc := range outs {
			result.Cols[i] = oc.name
		}
		for _, r := range raw.Rows {
			row := make(table.Row, len(outs))
			for i, oc := range outs {
				if oc.isGroup {
					row[i] = r[0]
				} else {
					row[i] = r[1+oc.idx]
				}
			}
			result.Rows = append(result.Rows, row)
		}
		return result, nil
	case hasAgg:
		specs := make([]core.AggregateSpec, 0, len(s.Items))
		names := make([]string, 0, len(s.Items))
		for _, item := range s.Items {
			if item.Agg == nil {
				return nil, fmt.Errorf("sql: mixing aggregates and plain columns requires GROUP BY")
			}
			specs = append(specs, core.AggregateSpec{Kind: item.Agg.Kind, Column: joinAggColumn(item.Agg.Column, res)})
			name := item.Alias
			if name == "" {
				name = item.Agg.Kind.String() + "(" + item.Agg.Column + ")"
			}
			names = append(names, name)
		}
		out, err := x.db.AggregateTable(t, pred, specs, nil)
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		out.Cols = names
		return out, nil
	default:
		tmp, err := x.db.SelectTable(t, pred, core.SelectOptions{Force: s.Force})
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		raw, err := x.db.Collect(tmp)
		if err != nil {
			return nil, err
		}
		return x.project(s, res, raw)
	}
}

// joinAggColumn resolves an aggregate's column name within the joined
// schema (right-side duplicates carry the r_ prefix).
func joinAggColumn(col string, res *resolver) string {
	if res.schema.ColIndex(col) >= 0 {
		return col
	}
	if res.schema.ColIndex("r_"+col) >= 0 {
		return "r_" + col
	}
	return col
}

// project maps select items over collected rows (a trace-neutral,
// in-enclave computation).
func (x *Executor) project(s *Select, res *resolver, raw *core.Result) (*core.Result, error) {
	if s.Star || len(s.Items) == 0 {
		return raw, nil
	}
	// Rebind the resolver to the raw result's column order.
	cols := make([]table.Column, len(raw.Cols))
	for i, name := range raw.Cols {
		cols[i] = table.Column{Name: name, Kind: table.KindInt}
	}
	out := &core.Result{Cols: make([]string, len(s.Items))}
	for i, item := range s.Items {
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ColumnRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out.Cols[i] = name
	}
	for _, r := range raw.Rows {
		row := make(table.Row, len(s.Items))
		for i, item := range s.Items {
			v, err := res.eval(item.Expr, r)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func resolveJoinCols(s *Select, lt, rt *core.Table) (string, string, error) {
	l, r := s.Join.LeftCol, s.Join.RightCol
	// Allow either order of qualification: ON a.x = b.y or ON b.y = a.x.
	inLeft := func(c *ColumnRef) bool {
		if c.Table != "" {
			return strings.EqualFold(c.Table, s.From)
		}
		return lt.Schema().ColIndex(c.Column) >= 0
	}
	if inLeft(l) {
		return l.Column, r.Column, nil
	}
	if inLeft(r) {
		return r.Column, l.Column, nil
	}
	return "", "", fmt.Errorf("sql: cannot resolve join columns %q/%q", l.Column, r.Column)
}

// groupKeyFunc compiles the GROUP BY expression into a core.GroupKey.
// Like resolver.pred, the error capture is mutex-guarded because the
// parallel grouped-aggregation operator calls it from several workers.
func groupKeyFunc(res *resolver, e Expr, errOut *error) core.GroupKey {
	var mu sync.Mutex
	return func(r table.Row) table.Value {
		v, err := res.eval(e, r)
		if err != nil {
			mu.Lock()
			if *errOut == nil {
				*errOut = err
			}
			mu.Unlock()
		}
		return v
	}
}

func andPred(a, b table.Pred) table.Pred {
	if a == nil {
		return b
	}
	return func(r table.Row) bool { return a(r) && b(r) }
}

func andExprs(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// exprEqual compares expressions structurally.
func exprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.Val.Equal(y.Val)
	case *ColumnRef:
		y, ok := b.(*ColumnRef)
		return ok && strings.EqualFold(x.Column, y.Column) && strings.EqualFold(x.Table, y.Table)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Placeholder:
		y, ok := b.(*Placeholder)
		return ok && x.Index == y.Index
	}
	return false
}
