package sql

import (
	"testing"

	"oblidb/internal/core"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// These tests are the leakage statement for parameter binding: two
// executions of one prepared statement shape with different argument
// values produce byte-identical untrusted traces, provided the public
// parameters (table sizes, matching-row counts — which the engine
// already publishes as output sizes) coincide. Argument values flow
// only through the in-enclave evaluator; nothing the host observes
// depends on them.

// fixedTraceKey makes two engines byte-comparable: same key → same
// enclave PRNG stream → same salts and store layout.
var fixedTraceKey = make([]byte, 32)

// tracedExec builds a fresh traced engine, loads the fixture, prepares
// shape, executes it with arg, and returns the execution-only trace.
func tracedExec(t *testing.T, shape string, arg table.Value) *trace.Tracer {
	t.Helper()
	tr := trace.New()
	db, err := core.Open(core.Config{Tracer: tr, Key: fixedTraceKey})
	if err != nil {
		t.Fatal(err)
	}
	x := New(db)
	for _, stmt := range []string{
		"CREATE TABLE t (id INTEGER, v INTEGER, name VARCHAR(8))",
		"INSERT INTO t VALUES (1, 10, 'a'), (2, 10, 'b'), (3, 20, 'c'), (4, 20, 'd'), (5, 30, 'e'), (6, 30, 'f'), (7, 40, 'g'), (8, 40, 'h')",
	} {
		if _, err := x.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	stmt, _, err := x.Stmt(shape)
	if err != nil {
		t.Fatal(err)
	}
	tr.Reset()
	if _, err := x.ExecuteStmtArgs(stmt, []table.Value{arg}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBoundArgsTraceIdenticalSelect(t *testing.T) {
	// Both arguments match exactly 2 of 8 rows: public sizes equal.
	const shape = "SELECT name FROM t WHERE v = $1"
	trA := tracedExec(t, shape, table.Int(10))
	trB := tracedExec(t, shape, table.Int(40))
	if d := trace.Diff(trA, trB); d != "" {
		t.Fatalf("prepared SELECT trace depends on the bound argument: %s", d)
	}
	if trA.Len() == 0 {
		t.Fatal("no events traced; the test is vacuous")
	}
}

func TestBoundArgsTraceIdenticalAggregate(t *testing.T) {
	// Aggregates scan everything and emit one row: any two arguments
	// give equal public sizes, even with different matching counts.
	const shape = "SELECT COUNT(*), SUM(v) FROM t WHERE v < $1"
	trA := tracedExec(t, shape, table.Int(15))
	trB := tracedExec(t, shape, table.Int(35))
	if d := trace.Diff(trA, trB); d != "" {
		t.Fatalf("prepared aggregate trace depends on the bound argument: %s", d)
	}
	if trA.Len() == 0 {
		t.Fatal("no events traced; the test is vacuous")
	}
}

func TestBoundArgsTraceIdenticalUpdate(t *testing.T) {
	// UPDATE rewrites every block of a flat table obliviously; both the
	// predicate argument and the SET argument differ across runs.
	const shape = "UPDATE t SET v = $1 WHERE v = $2"
	run := func(set, match int64) *trace.Tracer {
		t.Helper()
		tr := trace.New()
		db, err := core.Open(core.Config{Tracer: tr, Key: fixedTraceKey})
		if err != nil {
			t.Fatal(err)
		}
		x := New(db)
		for _, stmt := range []string{
			"CREATE TABLE t (id INTEGER, v INTEGER, name VARCHAR(8))",
			"INSERT INTO t VALUES (1, 10, 'a'), (2, 10, 'b'), (3, 20, 'c'), (4, 20, 'd')",
		} {
			if _, err := x.Execute(stmt); err != nil {
				t.Fatalf("%s: %v", stmt, err)
			}
		}
		stmt, _, err := x.Stmt(shape)
		if err != nil {
			t.Fatal(err)
		}
		tr.Reset()
		if _, err := x.ExecuteStmtArgs(stmt, []table.Value{table.Int(set), table.Int(match)}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trA := run(99, 10)
	trB := run(77, 20)
	if d := trace.Diff(trA, trB); d != "" {
		t.Fatalf("prepared UPDATE trace depends on the bound arguments: %s", d)
	}
	if trA.Len() == 0 {
		t.Fatal("no events traced; the test is vacuous")
	}
}
