package sql

import "strings"

// Shape returns a literal-free rendering of a statement's text: the
// token stream with every number and string literal replaced by a ?
// placeholder. It is what observability surfaces (the slow-statement
// log, per-shape tallies) may publish — the shape is exactly the
// information the plan cache already keys on and the paper concedes as
// plan leakage (§2.3), while the elided literals are the private values
// the engine promises to hide. Unlexable input collapses to "?".
func Shape(src string) string {
	toks, err := lex(src)
	if err != nil {
		return "?"
	}
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.kind {
		case tokNumber, tokString:
			parts = append(parts, "?")
		case tokParam:
			parts = append(parts, "$"+t.text)
		default:
			if t.text == "" { // the trailing EOF token
				continue
			}
			parts = append(parts, t.text)
		}
	}
	return strings.Join(parts, " ")
}

// KindOf names a statement's kind for per-kind telemetry. The result
// set is closed (one label value per AST node type), so it is safe as
// a metric label.
func KindOf(stmt Statement) string {
	switch stmt.(type) {
	case *Select:
		return "select"
	case *Insert:
		return "insert"
	case *Update:
		return "update"
	case *Delete:
		return "delete"
	case *CreateTable:
		return "create_table"
	case *DropTable:
		return "drop_table"
	case *Explain:
		return "explain"
	case *Begin:
		return "begin"
	case *Commit:
		return "commit"
	case *Rollback:
		return "rollback"
	}
	return "other"
}

// Shape returns the prepared statement's literal-free shape (see the
// package-level Shape). The canonical String rendering is re-lexed so
// literals in one-shot statements never reach a log line.
func (p *Prepared) Shape() string {
	return Shape(p.entry.stmt.(interface{ String() string }).String())
}

// Kind names the prepared statement's kind (see KindOf).
func (p *Prepared) Kind() string { return KindOf(p.entry.stmt) }
