package sql

import (
	"strings"
	"testing"
	"testing/quick"

	"oblidb/internal/core"
	"oblidb/internal/table"
)

func newExec(t *testing.T) *Executor {
	t.Helper()
	return New(core.MustOpen(core.Config{}))
}

func mustExec(t *testing.T, x *Executor, q string) *core.Result {
	t.Helper()
	res, err := x.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func seed(t *testing.T, x *Executor) {
	t.Helper()
	mustExec(t, x, `CREATE TABLE emp (id INTEGER, name VARCHAR(16), dept VARCHAR(8), salary INTEGER) STORAGE = BOTH INDEX ON id CAPACITY = 64`)
	rows := []string{
		`(1, 'alice', 'eng', 120)`,
		`(2, 'bob', 'eng', 100)`,
		`(3, 'carol', 'sales', 90)`,
		`(4, 'dave', 'sales', 80)`,
		`(5, 'erin', 'hr', 70)`,
		`(6, 'frank', 'eng', 110)`,
	}
	mustExec(t, x, `INSERT INTO emp VALUES `+strings.Join(rows, ", "))
}

func TestCreateInsertSelectStar(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT * FROM emp`)
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	if len(res.Cols) != 4 || res.Cols[0] != "id" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestSelectWhere(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT name FROM emp WHERE dept = 'eng' AND salary >= 110`)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2: %v", len(res.Rows), res.Rows)
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r[0].AsString()] = true
	}
	if !names["alice"] || !names["frank"] {
		t.Fatalf("names = %v", names)
	}
}

func TestSelectKeyRangeUsesIndex(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT * FROM emp WHERE id >= 2 AND id <= 4`)
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	// emp packs into a single sealed block, so the planner's costed
	// access choice serves the range via the cheaper flat scan (§5) —
	// with identical results, the range being part of the WHERE clause.
	if x.DB().LastPlan.UsedIndex {
		t.Fatal("single-block table should be served by the flat scan")
	}
	// Point query, the paper's §4.1 example shape.
	res = mustExec(t, x, `SELECT * FROM emp WHERE id = 5`)
	if len(res.Rows) != 1 || res.Rows[0][1].AsString() != "erin" {
		t.Fatalf("point query: %v", res.Rows)
	}
}

func TestUsingIndexTable(t *testing.T) {
	// USING INDEX(col) creates an index-only table: every keyed read
	// routes through the ORAM B+ tree, unkeyed reads raw-scan the ORAM.
	x := newExec(t)
	mustExec(t, x, `CREATE TABLE kv (k INTEGER, v VARCHAR(8)) USING INDEX(k) CAPACITY = 64`)
	mustExec(t, x, `INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	res := mustExec(t, x, `SELECT v FROM kv WHERE k = 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "b" {
		t.Fatalf("point query: %v", res.Rows)
	}
	if !x.DB().LastPlan.UsedIndex {
		t.Fatal("index-only table must use the index for keyed reads")
	}
	res = mustExec(t, x, `SELECT * FROM kv`)
	if len(res.Rows) != 3 {
		t.Fatalf("full scan: %d rows, want 3", len(res.Rows))
	}
	tab, err := x.DB().Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Kind() != core.KindIndexed || tab.Flat() != nil {
		t.Fatalf("kind = %v, flat = %v; want index-only", tab.Kind(), tab.Flat())
	}
}

func TestAggregates(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) FROM emp`)
	r := res.Rows[0]
	if r[0].AsInt() != 6 || r[1].AsFloat() != 570 || r[2].AsInt() != 70 || r[3].AsInt() != 120 || r[4].AsFloat() != 95 {
		t.Fatalf("aggregates = %v", r)
	}
	// Fused select+aggregate.
	res = mustExec(t, x, `SELECT COUNT(*) AS engineers FROM emp WHERE dept = 'eng'`)
	if res.Rows[0][0].AsInt() != 3 || res.Cols[0] != "engineers" {
		t.Fatalf("fused agg = %v cols=%v", res.Rows, res.Cols)
	}
}

func TestGroupBy(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept`)
	if len(res.Rows) != 3 {
		t.Fatalf("%d groups, want 3", len(res.Rows))
	}
	byDept := map[string][2]int64{}
	for _, r := range res.Rows {
		byDept[r[0].AsString()] = [2]int64{r[1].AsInt(), int64(r[2].AsFloat())}
	}
	if byDept["eng"] != [2]int64{3, 330} || byDept["sales"] != [2]int64{2, 170} || byDept["hr"] != [2]int64{1, 70} {
		t.Fatalf("groups = %v", byDept)
	}
}

func TestGroupBySubstr(t *testing.T) {
	// The BDB Q2 shape: group by a computed prefix.
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT SUBSTR(name, 1, 1), COUNT(*) FROM emp GROUP BY SUBSTR(name, 1, 1)`)
	if len(res.Rows) != 6 {
		t.Fatalf("%d groups, want 6 (distinct initials)", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `CREATE TABLE bonus (emp_id INTEGER, amount INTEGER) CAPACITY = 16`)
	mustExec(t, x, `INSERT INTO bonus VALUES (1, 10), (3, 30), (3, 31), (9, 99)`)
	res := mustExec(t, x, `SELECT * FROM emp JOIN bonus ON emp.id = bonus.emp_id`)
	if len(res.Rows) != 3 {
		t.Fatalf("join returned %d rows, want 3", len(res.Rows))
	}
}

func TestJoinWithFilterAndGroup(t *testing.T) {
	// The BDB Q3 shape: filtered join + grouped aggregation.
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `CREATE TABLE bonus (emp_id INTEGER, amount INTEGER) CAPACITY = 16`)
	mustExec(t, x, `INSERT INTO bonus VALUES (1, 10), (2, 20), (3, 30), (3, 31), (4, 40)`)
	res := mustExec(t, x, `SELECT dept, SUM(amount) FROM emp JOIN bonus ON id = emp_id WHERE salary >= 90 GROUP BY dept`)
	byDept := map[string]float64{}
	for _, r := range res.Rows {
		byDept[r[0].AsString()] = r[1].AsFloat()
	}
	// salary>=90 keeps ids 1,2,3,6; bonuses for 1,2,3,3 → eng 30, sales 61.
	if byDept["eng"] != 30 || byDept["sales"] != 61 {
		t.Fatalf("grouped join = %v", byDept)
	}
}

func TestJoinAggregateWithoutGroup(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `CREATE TABLE bonus (emp_id INTEGER, amount INTEGER) CAPACITY = 16`)
	mustExec(t, x, `INSERT INTO bonus VALUES (1, 10), (2, 20), (9, 99)`)
	res := mustExec(t, x, `SELECT COUNT(*), SUM(amount) FROM emp JOIN bonus ON id = emp_id`)
	if res.Rows[0][0].AsInt() != 2 || res.Rows[0][1].AsFloat() != 30 {
		t.Fatalf("join aggregate = %v", res.Rows[0])
	}
}

func TestJoinQualifiedColumnsAndDuplicates(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	// A right table sharing column names with emp: the joined schema
	// renames them, and qualified references still resolve.
	mustExec(t, x, `CREATE TABLE emp2 (id INTEGER, name VARCHAR(16)) CAPACITY = 8`)
	mustExec(t, x, `INSERT INTO emp2 VALUES (1, 'mirror-a'), (3, 'mirror-c')`)
	res := mustExec(t, x, `SELECT emp.name, emp2.name FROM emp JOIN emp2 ON emp.id = emp2.id`)
	if len(res.Rows) != 2 || len(res.Rows[0]) != 2 {
		t.Fatalf("qualified join = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].AsString()[:6] != "mirror" {
			t.Fatalf("right-side name resolved wrong: %v", r)
		}
	}
	// Reversed ON order must also resolve.
	res = mustExec(t, x, `SELECT COUNT(*) FROM emp JOIN emp2 ON emp2.id = emp.id`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("reversed ON = %v", res.Rows[0][0])
	}
}

func TestJoinGroupByRightColumn(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `CREATE TABLE bonus (emp_id INTEGER, kind VARCHAR(8), amount INTEGER) CAPACITY = 16`)
	mustExec(t, x, `INSERT INTO bonus VALUES (1, 'spot', 5), (2, 'spot', 7), (1, 'annual', 50)`)
	res := mustExec(t, x, `SELECT kind, SUM(amount) FROM emp JOIN bonus ON id = emp_id GROUP BY kind`)
	sums := map[string]float64{}
	for _, r := range res.Rows {
		sums[r[0].AsString()] = r[1].AsFloat()
	}
	if sums["spot"] != 12 || sums["annual"] != 50 {
		t.Fatalf("grouped join sums = %v", sums)
	}
}

func TestGroupByWithAliases(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT dept AS d, COUNT(*) AS n FROM emp GROUP BY dept`)
	if res.Cols[0] != "d" || res.Cols[1] != "n" {
		t.Fatalf("aliases = %v", res.Cols)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT name FROM emp WHERE salary % 2 = 0 AND LENGTH(name) >= 5 AND -salary < 0`)
	if len(res.Rows) == 0 {
		t.Fatal("no rows matched composite expression")
	}
	res = mustExec(t, x, `SELECT SUBSTR(name, 2, 3) FROM emp WHERE id = 1`)
	if res.Rows[0][0].AsString() != "lic" {
		t.Fatalf("SUBSTR = %v", res.Rows[0][0])
	}
	// Out-of-range SUBSTR bounds clamp.
	res = mustExec(t, x, `SELECT SUBSTR(name, 99, 3) FROM emp WHERE id = 1`)
	if res.Rows[0][0].AsString() != "" {
		t.Fatalf("clamped SUBSTR = %v", res.Rows[0][0])
	}
}

func TestNotAndOrPrecedence(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT COUNT(*) FROM emp WHERE NOT dept = 'eng' AND salary > 60 OR id = 1`)
	// (NOT eng AND >60) = carol,dave,erin → 3; OR id=1 adds alice → 4.
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("precedence result = %v", res.Rows[0][0])
	}
}

func TestUpdateDelete(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `UPDATE emp SET salary = salary + 5 WHERE dept = 'eng'`)
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("updated %v, want 3", res.Rows[0][0])
	}
	res = mustExec(t, x, `SELECT SUM(salary) FROM emp`)
	if res.Rows[0][0].AsFloat() != 585 {
		t.Fatalf("sum after update = %v", res.Rows[0][0])
	}
	res = mustExec(t, x, `DELETE FROM emp WHERE salary < 90`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("deleted %v, want 2", res.Rows[0][0])
	}
	res = mustExec(t, x, `SELECT COUNT(*) FROM emp`)
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("count after delete = %v", res.Rows[0][0])
	}
}

func TestDeleteByKey(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `DELETE FROM emp WHERE id = 3`)
	res := mustExec(t, x, `SELECT COUNT(*) FROM emp`)
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestForceAlgorithm(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `SELECT * FROM emp WHERE salary > 100 FORCE HASH`)
	if x.DB().LastPlan.SelectAlg.String() != "Hash" {
		t.Fatalf("forced algorithm not honored: %s", x.DB().LastPlan.SelectAlg)
	}
}

func TestComputedProjection(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	res := mustExec(t, x, `SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1`)
	if res.Rows[0][1].AsInt() != 240 || res.Cols[1] != "double_pay" {
		t.Fatalf("computed projection = %v %v", res.Cols, res.Rows)
	}
}

func TestDropTable(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	mustExec(t, x, `DROP TABLE emp`)
	if _, err := x.Execute(`SELECT * FROM emp`); err == nil {
		t.Fatal("select from dropped table succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	x := newExec(t)
	bad := []string{
		`SELEC * FROM t`,
		`SELECT * FROM`,
		`CREATE TABLE t (x WIBBLE)`,
		`INSERT INTO t VALUES (1,`,
		`SELECT * FROM t WHERE x ===`,
		`SELECT * FROM t; SELECT * FROM t`,
		`CREATE TABLE t (x INTEGER) STORAGE = MAGNETIC`,
		`SELECT 'unterminated FROM t`,
	}
	for _, q := range bad {
		if _, err := x.Execute(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	x := newExec(t)
	seed(t, x)
	bad := []string{
		`SELECT ghost FROM emp`,
		`SELECT * FROM emp WHERE ghost = 1`,
		`SELECT SUM(name) FROM emp`,
		`SELECT dept, COUNT(*) FROM emp GROUP BY salary`,
		`SELECT * FROM emp WHERE salary / 0 = 1`,
		`INSERT INTO emp VALUES (1)`,
	}
	for _, q := range bad {
		if _, err := x.Execute(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	x := newExec(t)
	mustExec(t, x, `CREATE TABLE q (s VARCHAR(16))`)
	mustExec(t, x, `INSERT INTO q VALUES ('it''s')`)
	res := mustExec(t, x, `SELECT * FROM q WHERE s = 'it''s'`)
	if len(res.Rows) != 1 {
		t.Fatal("escaped quote mishandled")
	}
}

func TestDateAsStringComparison(t *testing.T) {
	// ISO dates compare lexicographically; the paper's Checkins example.
	x := newExec(t)
	mustExec(t, x, `CREATE TABLE checkins (uid INTEGER, date VARCHAR(10)) CAPACITY = 16`)
	mustExec(t, x, `INSERT INTO checkins VALUES (1, '2018-08-14'), (2, '2017-01-01'), (1, '2018-09-02')`)
	res := mustExec(t, x, `SELECT * FROM checkins WHERE uid = 1 AND date > '2018-01-01'`)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
}

func TestConstEvalInInsert(t *testing.T) {
	x := newExec(t)
	mustExec(t, x, `CREATE TABLE n (v INTEGER)`)
	mustExec(t, x, `INSERT INTO n VALUES (2 + 3 * 4)`)
	res := mustExec(t, x, `SELECT * FROM n`)
	if res.Rows[0][0].AsInt() != 14 {
		t.Fatalf("const eval = %v", res.Rows[0][0])
	}
}

func TestBoolColumns(t *testing.T) {
	x := newExec(t)
	mustExec(t, x, `CREATE TABLE flags (id INTEGER, ok BOOLEAN)`)
	mustExec(t, x, `INSERT INTO flags VALUES (1, TRUE), (2, FALSE)`)
	res := mustExec(t, x, `SELECT id FROM flags WHERE ok`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("bool filter = %v", res.Rows)
	}
}

func TestKeyRangeExtraction(t *testing.T) {
	parse := func(q string) Expr {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*Select).Where
	}
	e := parse(`SELECT * FROM t WHERE id >= 5 AND id < 10 AND name = 'x'`)
	kr := keyRange(e, "id")
	if kr == nil || kr.Lo != 5 || kr.Hi != 9 {
		t.Fatalf("range = %+v", kr)
	}
	e = parse(`SELECT * FROM t WHERE 7 = id`)
	kr = keyRange(e, "id")
	if kr == nil || kr.Lo != 7 || kr.Hi != 7 {
		t.Fatalf("flipped eq range = %+v", kr)
	}
	e = parse(`SELECT * FROM t WHERE id = 1 OR id = 2`)
	if keyRange(e, "id") != nil {
		t.Fatal("OR must not produce a key range")
	}
	e = parse(`SELECT * FROM t WHERE other > 3`)
	if keyRange(e, "id") != nil {
		t.Fatal("non-key column produced a range")
	}
}

func TestParserNeverPanics(t *testing.T) {
	// Property: any input yields a statement or an error, never a panic.
	check := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	seeds := []string{
		"", ";", "SELECT", "SELECT * FROM", "SELECT ((((", "'", "''",
		"CREATE TABLE t (", "INSERT INTO t VALUES", "1 + 2",
		"SELECT * FROM t WHERE x = = 1", "SELECT COUNT( FROM t",
		"UPDATE t SET", "DELETE", "DROP", "\x00\x01\x02",
		"SELECT * FROM t GROUP BY", "SELECT SUBSTR(a FROM t",
	}
	for _, s := range seeds {
		if !check(s) {
			t.Fatalf("parser panicked on %q", s)
		}
	}
	if err := quick.Check(func(s string) bool { return check(s) }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Mutations of a valid statement.
	base := `SELECT dept, COUNT(*) FROM emp JOIN b ON id = emp_id WHERE salary >= 90 GROUP BY dept`
	for i := 0; i < len(base); i++ {
		if !check(base[:i]) || !check(base[i:]) {
			t.Fatalf("parser panicked on truncation at %d", i)
		}
	}
}

func TestValueParsingKinds(t *testing.T) {
	x := newExec(t)
	mustExec(t, x, `CREATE TABLE k (i INTEGER, f FLOAT, s VARCHAR(8), b BOOLEAN)`)
	mustExec(t, x, `INSERT INTO k VALUES (-3, 2.5, 'hi', TRUE)`)
	res := mustExec(t, x, `SELECT * FROM k`)
	r := res.Rows[0]
	if r[0].AsInt() != -3 || r[1].AsFloat() != 2.5 || r[2].AsString() != "hi" || !r[3].AsBool() {
		t.Fatalf("row = %v", r)
	}
	if r[0].Kind != table.KindInt || r[1].Kind != table.KindFloat {
		t.Fatalf("kinds = %v %v", r[0].Kind, r[1].Kind)
	}
}
