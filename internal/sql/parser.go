package sql

import (
	"fmt"
	"strconv"
	"strings"

	"oblidb/internal/core"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

// maxParamIndex bounds $n so a hostile statement cannot demand an
// absurd argument arity.
const maxParamIndex = 65535

type parser struct {
	tokens []token
	pos    int
	// maxParam is the largest placeholder index seen so far; an
	// anonymous ? takes maxParam+1 (SQLite's numbering rule, which keeps
	// mixed ? / $n statements deterministic).
	maxParam int
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }

// acceptKeyword consumes an identifier matching word (case-insensitive).
func (p *parser) acceptKeyword(word string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.acceptKeyword(word) {
		return fmt.Errorf("sql: expected %s, got %q", word, p.peek().text)
	}
	return nil
}

// accept consumes a punctuation token.
func (p *parser) accept(punct string) bool {
	if p.peek().kind == tokPunct && p.peek().text == punct {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return fmt.Errorf("sql: expected %q, got %q", punct, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.peek().kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q", p.peek().text)
	}
	return p.next().text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("EXPLAIN"):
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		if _, ok := inner.(*Explain); ok {
			return nil, fmt.Errorf("sql: EXPLAIN cannot nest")
		}
		return &Explain{Stmt: inner}, nil
	case p.acceptKeyword("CREATE"):
		return p.createTable()
	case p.acceptKeyword("INSERT"):
		return p.insert()
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	case p.acceptKeyword("UPDATE"):
		return p.update()
	case p.acceptKeyword("DELETE"):
		return p.delete()
	case p.acceptKeyword("DROP"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKeyword("BEGIN"):
		p.txNoise()
		return &Begin{}, nil
	case p.acceptKeyword("COMMIT"):
		p.txNoise()
		return &Commit{}, nil
	case p.acceptKeyword("ROLLBACK"):
		p.txNoise()
		return &Rollback{}, nil
	}
	return nil, fmt.Errorf("sql: expected a statement, got %q", p.peek().text)
}

// txNoise swallows the optional TRANSACTION / WORK keyword after
// BEGIN, COMMIT, or ROLLBACK.
func (p *parser) txNoise() {
	if !p.acceptKeyword("TRANSACTION") {
		p.acceptKeyword("WORK")
	}
}

func (p *parser) createTable() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	stmt := &CreateTable{Name: name}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		col, err := p.columnType(colName)
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col)
		if p.accept(",") {
			continue
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		break
	}
	for {
		switch {
		case p.acceptKeyword("STORAGE"):
			if !p.accept("=") {
				return nil, fmt.Errorf("sql: expected = after STORAGE")
			}
			kind, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch strings.ToUpper(kind) {
			case "FLAT":
				stmt.Kind = core.KindFlat
			case "INDEXED":
				stmt.Kind = core.KindIndexed
			case "BOTH":
				stmt.Kind = core.KindBoth
			default:
				return nil, fmt.Errorf("sql: unknown storage kind %q", kind)
			}
		case p.acceptKeyword("INDEX"):
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.IndexCol = col
		case p.acceptKeyword("USING"):
			// USING INDEX(col): the indexed storage method as the table's
			// primary representation (defaults to index-only storage).
			if err := p.expectKeyword("INDEX"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			stmt.IndexCol = col
			stmt.UsingIndex = true
		case p.acceptKeyword("CAPACITY"):
			if !p.accept("=") {
				return nil, fmt.Errorf("sql: expected = after CAPACITY")
			}
			n, err := p.intLiteral()
			if err != nil {
				return nil, err
			}
			stmt.Capacity = n
		case p.acceptKeyword("OBLIVIOUS"):
			if err := p.expectKeyword("INSERTS"); err != nil {
				return nil, err
			}
			stmt.ObliviousI = true
		default:
			if stmt.IndexCol != "" && stmt.Kind == core.KindFlat {
				if stmt.UsingIndex {
					stmt.Kind = core.KindIndexed
				} else {
					stmt.Kind = core.KindBoth
				}
			}
			return stmt, nil
		}
	}
}

func (p *parser) columnType(name string) (table.Column, error) {
	typ, err := p.ident()
	if err != nil {
		return table.Column{}, err
	}
	switch strings.ToUpper(typ) {
	case "INTEGER", "INT", "BIGINT", "DATE":
		return table.Column{Name: name, Kind: table.KindInt}, nil
	case "FLOAT", "REAL", "DOUBLE":
		return table.Column{Name: name, Kind: table.KindFloat}, nil
	case "BOOLEAN", "BOOL":
		return table.Column{Name: name, Kind: table.KindBool}, nil
	case "VARCHAR", "CHAR", "TEXT":
		width := 32
		if p.accept("(") {
			width, err = p.intLiteral()
			if err != nil {
				return table.Column{}, err
			}
			if err := p.expect(")"); err != nil {
				return table.Column{}, err
			}
		}
		return table.Column{Name: name, Kind: table.KindString, Width: width}, nil
	}
	return table.Column{}, fmt.Errorf("sql: unknown type %q for column %q", typ, name)
}

func (p *parser) intLiteral() (int, error) {
	if p.peek().kind != tokNumber {
		return 0, fmt.Errorf("sql: expected number, got %q", p.peek().text)
	}
	return strconv.Atoi(p.next().text)
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &Insert{Name: name}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			// Values must be constant over the row being inserted —
			// literals, arithmetic, placeholders — never column refs.
			var badCol error
			walkExpr(e, func(x Expr) {
				if c, ok := x.(*ColumnRef); ok && badCol == nil {
					badCol = fmt.Errorf("sql: INSERT value cannot reference column %q", c.Column)
				}
			})
			if badCol != nil {
				return nil, badCol
			}
			row = append(row, e)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		stmt.Values = append(stmt.Values, row)
		if !p.accept(",") {
			return stmt, nil
		}
	}
}

var aggKeywords = map[string]exec.AggKind{
	"COUNT": exec.AggCount,
	"SUM":   exec.AggSum,
	"MIN":   exec.AggMin,
	"MAX":   exec.AggMax,
	"AVG":   exec.AggAvg,
}

func (p *parser) selectStmt() (Statement, error) {
	stmt := &Select{}
	if p.accept("*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	if p.acceptKeyword("JOIN") {
		jc, err := p.joinClause()
		if err != nil {
			return nil, err
		}
		stmt.Join = jc
	}
	if p.acceptKeyword("WHERE") {
		stmt.Where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		stmt.GroupBy, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		oc := &OrderClause{Col: col}
		if p.acceptKeyword("DESC") {
			oc.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		stmt.Order = oc
	}
	if p.acceptKeyword("LIMIT") {
		if t := p.peek(); t.kind == tokParam || (t.kind == tokPunct && t.text == "?") {
			// The limit is the public output size; a parameter would tie
			// what the host observes to a private argument value.
			return nil, fmt.Errorf("sql: LIMIT must be a literal, not a parameter (the limit is the public output size)")
		}
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sql: negative LIMIT %d", n)
		}
		stmt.Limit = &n
	}
	if p.acceptKeyword("FORCE") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		alg, err := selectAlgByName(name)
		if err != nil {
			return nil, err
		}
		stmt.Force = &alg
	}
	return stmt, nil
}

func selectAlgByName(name string) (exec.SelectAlgorithm, error) {
	switch strings.ToUpper(name) {
	case "NAIVE":
		return exec.SelectNaive, nil
	case "SMALL":
		return exec.SelectSmall, nil
	case "LARGE":
		return exec.SelectLarge, nil
	case "CONTINUOUS":
		return exec.SelectContinuous, nil
	case "HASH":
		return exec.SelectHash, nil
	}
	return 0, fmt.Errorf("sql: unknown select algorithm %q", name)
}

func (p *parser) selectItem() (SelectItem, error) {
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if call, ok := e.(*Call); ok {
		if kind, isAgg := aggKeywords[strings.ToUpper(call.Name)]; isAgg {
			agg := &AggItem{Kind: kind}
			if kind != exec.AggCount {
				if len(call.Args) != 1 {
					return SelectItem{}, fmt.Errorf("sql: %s takes exactly one column name", call.Name)
				}
				cr, ok := call.Args[0].(*ColumnRef)
				if !ok {
					return SelectItem{}, fmt.Errorf("sql: %s takes a column name", call.Name)
				}
				agg.Column = cr.Column
			}
			item.Agg = agg
		}
	}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) joinClause() (*JoinClause, error) {
	right, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	l, err := p.columnRef()
	if err != nil {
		return nil, err
	}
	if !p.accept("=") {
		return nil, fmt.Errorf("sql: JOIN ON needs an equality")
	}
	r, err := p.columnRef()
	if err != nil {
		return nil, err
	}
	return &JoinClause{Right: right, LeftCol: l, RightCol: r}, nil
}

func (p *parser) columnRef() (*ColumnRef, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: first, Column: col}, nil
	}
	return &ColumnRef{Column: first}, nil
}

func (p *parser) update() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &Update{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !p.accept("=") {
			return nil, fmt.Errorf("sql: expected = in SET")
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Column: col, Value: val})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		stmt.Where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) delete() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &Delete{Name: name}
	if p.acceptKeyword("WHERE") {
		var err error
		stmt.Where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// --- expressions, precedence climbing -------------------------------------

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

var cmpOps = []string{"<=", ">=", "<>", "!=", "=", "<", ">"}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for _, op := range cmpOps {
		if p.accept(op) {
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case p.accept("-"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.accept("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "/", L: l, R: r}
		case p.accept("%"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokParam:
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 || n > maxParamIndex {
			return nil, fmt.Errorf("sql: bad parameter number $%s (1..%d)", t.text, maxParamIndex)
		}
		if n > p.maxParam {
			p.maxParam = n
		}
		return &Placeholder{Index: n}, nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return &Literal{Val: table.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return &Literal{Val: table.Int(n)}, nil
	case tokString:
		p.next()
		return &Literal{Val: table.Str(t.text)}, nil
	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.next()
			return &Literal{Val: table.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: table.Bool(false)}, nil
		}
		name, _ := p.ident()
		if p.accept("(") {
			return p.callArgs(name)
		}
		if p.accept(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	case tokPunct:
		if t.text == "?" {
			p.next()
			p.maxParam++
			if p.maxParam > maxParamIndex {
				return nil, fmt.Errorf("sql: too many parameters (max %d)", maxParamIndex)
			}
			return &Placeholder{Index: p.maxParam}, nil
		}
		if t.text == "(" {
			p.next()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %q in expression", t.text)
}

func (p *parser) callArgs(name string) (Expr, error) {
	call := &Call{Name: strings.ToUpper(name)}
	if p.accept("*") {
		// COUNT(*)
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.accept(")") {
		return call, nil
	}
	for {
		arg, err := p.expression()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.accept(",") {
			continue
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
}
