package core

import (
	"errors"
	"fmt"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/plan"
	"oblidb/internal/planner"
	"oblidb/internal/storage"
	"oblidb/internal/table"
)

// Result is a materialized query result, decrypted inside the enclave for
// delivery to the client (who talks to the enclave over a secure channel;
// result contents are outside the adversary's view, their size is not).
type Result struct {
	Cols []string
	Rows []table.Row
	// Affected marks a DDL/DML outcome: the single cell is the affected
	// row count, not query output. Consumers (the database/sql driver's
	// RowsAffected) key on this flag rather than sniffing column names.
	Affected bool
}

// SelectOptions configures a selection query.
type SelectOptions struct {
	// KeyRange restricts the query via the table's index when one exists:
	// "the linear scan begins inside an ORAM at a point specified by an
	// index lookup" (§4.1).
	KeyRange *KeyRange
	// Projection lists output columns (nil means all).
	Projection []string
	// Force overrides the planner's algorithm choice ("users can also
	// manually choose to force a particular operator", §5).
	Force *exec.SelectAlgorithm
}

// Select runs an oblivious selection and materializes the result.
func (db *DB) Select(name string, pred table.Pred, opts SelectOptions) (*Result, error) {
	c, release := db.beginRead()
	defer release()
	t, err := c.lookup(name)
	if err != nil {
		return nil, err
	}
	tmp, err := db.selectTable(c, t, pred, opts)
	if err != nil {
		return nil, err
	}
	return db.collect(c, tmp)
}

// SelectTable runs an oblivious selection into an intermediate table for
// further composition. The planner's stats scan supplies |R| and
// contiguity; padding mode skips planning and pads the output (§2.3).
func (db *DB) SelectTable(t *Table, pred table.Pred, opts SelectOptions) (*Table, error) {
	c, release := db.beginRead()
	defer release()
	return db.selectTable(c, t, pred, opts)
}

// selectTable is SelectTable without the lock, for internal cross-calls;
// c is the execution context the statement runs under.
func (db *DB) selectTable(c *execCtx, t *Table, pred table.Pred, opts SelectOptions) (*Table, error) {
	if pred == nil {
		pred = table.All
	}
	in, epred, release, err := db.inputFor(c, t, opts.KeyRange, pred)
	if err != nil {
		return nil, err
	}
	defer release()
	pred = epred

	projSchema, transform, err := db.projection(t.schema, opts.Projection)
	if err != nil {
		return nil, err
	}
	recSize := projSchema.RecordSize()

	execOpts := exec.SelectOptions{Transform: transform, OutSchema: projSchema}
	var alg exec.SelectAlgorithm
	if db.cfg.Padding.Enabled {
		// Padding mode: no planning, fixed general-purpose operator,
		// output padded to the configured bound.
		st, err := planner.ScanStats(in, pred)
		if err != nil {
			return nil, err
		}
		if st.Matching > db.cfg.Padding.PadRows {
			return nil, fmt.Errorf("core: %d matching rows exceed the padding bound %d", st.Matching, db.cfg.Padding.PadRows)
		}
		execOpts.OutSize = db.cfg.Padding.PadRows
		alg = exec.SelectHash
		db.setLastPlan(PlanInfo{SelectAlg: alg, Stats: st})
		db.pickSelect(alg.String())
		// The Hash operator places st.Matching real rows among the padded
		// structure; pred gates real writes, the pad hides |R|.
		out, err := db.runSelect(c, in, pred, alg, execOpts, st.Matching)
		if err != nil {
			return nil, err
		}
		return db.wrapTemp(out), nil
	}

	st, err := planner.ScanStats(in, pred)
	if err != nil {
		return nil, err
	}
	if opts.Force != nil {
		alg = *opts.Force
	} else {
		// Pricing runs against the parent enclave's budget — shared by
		// all contexts — so the pick is interleaving-independent.
		alg = planner.ChooseSelect(db.enc, recSize, st, db.cfg.Planner)
	}
	db.setLastPlan(PlanInfo{SelectAlg: alg, Stats: st, UsedIndex: db.useIndexFor(t, opts.KeyRange)})
	db.pickSelect(alg.String())
	execOpts.OutSize = st.Matching
	execOpts.ContinuousStart = st.Start
	out, err := db.runSelect(c, in, pred, alg, execOpts, st.Matching)
	if err != nil {
		return nil, err
	}
	return db.wrapTemp(out), nil
}

// runSelect invokes the operator, retrying hash overflow with fresh salts
// (the Azar-bound failure case, §4.1).
func (db *DB) runSelect(c *execCtx, in exec.Input, pred table.Pred, alg exec.SelectAlgorithm, opts exec.SelectOptions, matching int) (*storage.Flat, error) {
	name := db.tmpName("select")
	for attempt := 0; ; attempt++ {
		opts.Salt = uint64(attempt)
		out, err := db.execSelect(c, in, pred, alg, opts, name)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, exec.ErrHashOverflow) || attempt >= 4 {
			return nil, err
		}
	}
}

// execSelect dispatches one select to the parallel variant when the
// worker pool, the planner's partition rule, and the algorithm allow it,
// falling back to the serial operator otherwise. The dispatch decision
// uses public sizes only. The operator itself runs on the context's
// enclave.
func (db *DB) execSelect(c *execCtx, in exec.Input, pred table.Pred, alg exec.SelectAlgorithm, opts exec.SelectOptions, name string) (*storage.Flat, error) {
	recSize := in.Schema().RecordSize()
	if opts.OutSchema != nil {
		recSize = opts.OutSchema.RecordSize()
	}
	if ws, f, ok := db.parallelFor(c, in, recSize); ok && exec.ParallelizableSelect(alg) && !db.cfg.Padding.Enabled {
		out, err := exec.ParallelSelect(db.enc, ws, f, pred, alg, opts, name)
		if !errors.Is(err, exec.ErrSerialFallback) {
			return out, err
		}
	}
	return exec.Select(c.enc, in, pred, alg, opts, name)
}

// parallelFor decides whether an operator over in runs partitioned: the
// engine must have a pool, the statement must hold the exclusive lock
// (the Split workers are a single shared pool), the input must be a flat
// block array, and the planner must find a partition count ≥ 2 worth the
// handoff.
func (db *DB) parallelFor(c *execCtx, in exec.Input, recSize int) ([]*enclave.Enclave, *storage.Flat, bool) {
	if !c.serial || len(db.workers) < 2 {
		return nil, nil, false
	}
	f, ok := exec.AsFlat(in)
	if !ok {
		return nil, nil, false
	}
	p := planner.ChooseParallelism(db.enc, f.NumBlocks(), recSize, len(db.workers))
	if p < 2 {
		return nil, nil, false
	}
	return db.workers[:p], f, true
}

// AggregateSpec is one aggregate over a named column (empty for COUNT).
type AggregateSpec struct {
	Kind   exec.AggKind
	Column string
}

func (db *DB) resolveSpecs(s *table.Schema, specs []AggregateSpec) ([]exec.AggSpec, []string, error) {
	out := make([]exec.AggSpec, len(specs))
	names := make([]string, len(specs))
	for i, a := range specs {
		col := -1
		if a.Kind != exec.AggCount {
			col = s.ColIndex(a.Column)
			if col < 0 {
				return nil, nil, fmt.Errorf("core: no column %q to aggregate", a.Column)
			}
			names[i] = fmt.Sprintf("%s(%s)", a.Kind, s.Col(col).Name)
		} else {
			names[i] = "COUNT(*)"
		}
		out[i] = exec.AggSpec{Kind: a.Kind, Col: col}
	}
	return out, names, nil
}

// Aggregate computes aggregates over rows matching pred in one fused
// select+aggregate pass — no intermediate table, no intermediate leakage
// (§4.2).
func (db *DB) Aggregate(name string, pred table.Pred, specs []AggregateSpec, key *KeyRange) (*Result, error) {
	c, release := db.beginRead()
	defer release()
	t, err := c.lookup(name)
	if err != nil {
		return nil, err
	}
	return db.aggregateTable(c, t, pred, specs, key)
}

// AggregateTable is Aggregate over a table handle.
func (db *DB) AggregateTable(t *Table, pred table.Pred, specs []AggregateSpec, key *KeyRange) (*Result, error) {
	c, release := db.beginRead()
	defer release()
	return db.aggregateTable(c, t, pred, specs, key)
}

// aggregateTable is AggregateTable without the lock.
func (db *DB) aggregateTable(c *execCtx, t *Table, pred table.Pred, specs []AggregateSpec, key *KeyRange) (*Result, error) {
	if pred == nil {
		pred = table.All
	}
	in, epred, release, err := db.inputFor(c, t, key, pred)
	if err != nil {
		return nil, err
	}
	defer release()
	pred = epred
	es, names, err := db.resolveSpecs(t.schema, specs)
	if err != nil {
		return nil, err
	}
	var vals []table.Value
	if ws, f, ok := db.parallelFor(c, in, t.schema.RecordSize()); ok {
		vals, err = exec.ParallelAggregate(ws, f, pred, es)
	} else {
		vals, err = exec.Aggregate(in, pred, es)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Cols: names, Rows: []table.Row{table.Row(vals)}}, nil
}

// GroupKey derives the grouping value from a row inside the enclave.
type GroupKey = exec.GroupBy

// GroupAggregate runs grouped aggregation (hash bucketing, §4.2),
// returning one row [group, aggregates...] per group.
func (db *DB) GroupAggregate(name string, pred table.Pred, groupBy GroupKey, specs []AggregateSpec, key *KeyRange) (*Result, error) {
	c, release := db.beginRead()
	defer release()
	t, err := c.lookup(name)
	if err != nil {
		return nil, err
	}
	tmp, err := db.groupAggregateTable(c, t, pred, groupBy, specs, key)
	if err != nil {
		return nil, err
	}
	return db.collect(c, tmp)
}

// GroupAggregateTable is GroupAggregate into an intermediate table.
func (db *DB) GroupAggregateTable(t *Table, pred table.Pred, groupBy GroupKey, specs []AggregateSpec, key *KeyRange) (*Table, error) {
	c, release := db.beginRead()
	defer release()
	return db.groupAggregateTable(c, t, pred, groupBy, specs, key)
}

// groupAggregateTable is GroupAggregateTable without the lock.
func (db *DB) groupAggregateTable(c *execCtx, t *Table, pred table.Pred, groupBy GroupKey, specs []AggregateSpec, key *KeyRange) (*Table, error) {
	if pred == nil {
		pred = table.All
	}
	in, epred, release, err := db.inputFor(c, t, key, pred)
	if err != nil {
		return nil, err
	}
	defer release()
	pred = epred
	es, _, err := db.resolveSpecs(t.schema, specs)
	if err != nil {
		return nil, err
	}
	gopts := exec.GroupAggregateOptions{}
	if db.cfg.Padding.Enabled {
		gopts.PadGroups = db.cfg.Padding.PadGroups
	}
	var out *storage.Flat
	if ws, f, ok := db.parallelFor(c, in, t.schema.RecordSize()); ok {
		out, err = exec.ParallelGroupAggregate(db.enc, ws, f, pred, groupBy, es, gopts, db.tmpName("group"))
		if !errors.Is(err, exec.ErrSerialFallback) {
			if err != nil {
				return nil, err
			}
			return db.wrapTemp(out), nil
		}
	}
	out, err = exec.GroupAggregate(c.enc, in, pred, groupBy, es, gopts, db.tmpName("group"))
	if err != nil {
		return nil, err
	}
	return db.wrapTemp(out), nil
}

// JoinOptions configures a join query.
type JoinOptions struct {
	// FilterLeft/FilterRight pre-filter each side obliviously before the
	// join (composed as in the §4.1 example of chained operators).
	FilterLeft, FilterRight table.Pred
	// Force overrides the planner's join choice.
	Force *exec.JoinAlgorithm
}

// Join joins left and right on leftCol = rightCol. left is the primary
// (unique-key) side for the foreign-key sort-merge joins (§4.3).
func (db *DB) Join(left, right, leftCol, rightCol string, opts JoinOptions) (*Result, error) {
	c, release := db.beginRead()
	defer release()
	tmp, err := db.joinTable(c, left, right, leftCol, rightCol, opts)
	if err != nil {
		return nil, err
	}
	return db.collect(c, tmp)
}

// JoinTable is Join into an intermediate table for further composition.
func (db *DB) JoinTable(left, right, leftCol, rightCol string, opts JoinOptions) (*Table, error) {
	c, release := db.beginRead()
	defer release()
	return db.joinTable(c, left, right, leftCol, rightCol, opts)
}

// joinTable is JoinTable without the lock.
func (db *DB) joinTable(c *execCtx, left, right, leftCol, rightCol string, opts JoinOptions) (*Table, error) {
	lt, err := c.lookup(left)
	if err != nil {
		return nil, err
	}
	rt, err := c.lookup(right)
	if err != nil {
		return nil, err
	}
	lcol := lt.schema.ColIndex(leftCol)
	rcol := rt.schema.ColIndex(rightCol)
	if lcol < 0 || rcol < 0 {
		return nil, fmt.Errorf("core: join columns %q/%q not found", leftCol, rightCol)
	}

	lTab, rTab := lt, rt
	if opts.FilterLeft != nil {
		if lTab, err = db.selectTable(c, lt, opts.FilterLeft, SelectOptions{}); err != nil {
			return nil, err
		}
	}
	if opts.FilterRight != nil {
		if rTab, err = db.selectTable(c, rt, opts.FilterRight, SelectOptions{}); err != nil {
			return nil, err
		}
	}
	lin, _, lrel, err := db.inputFor(c, lTab, nil, nil)
	if err != nil {
		return nil, err
	}
	defer lrel()
	rin, _, rrel, err := db.inputFor(c, rTab, nil, nil)
	if err != nil {
		return nil, err
	}
	defer rrel()

	outSchema, err := exec.JoinedSchema(lTab.schema, rTab.schema)
	if err != nil {
		return nil, err
	}
	var alg exec.JoinAlgorithm
	if opts.Force != nil {
		alg = *opts.Force
	} else {
		alg = planner.ChooseJoin(db.enc, planner.JoinSizes{
			T1Blocks:      lin.Blocks(),
			T2Blocks:      rin.Blocks(),
			T1Rows:        exec.RowSlots(lin),
			T2Rows:        exec.RowSlots(rin),
			BuildRecSize:  lTab.schema.RecordSize(),
			SortBlockSize: 9 + max(lTab.schema.RecordSize(), rTab.schema.RecordSize()),
		})
	}
	db.setLastJoin(alg)
	db.pickJoin(alg.String())
	name := db.tmpName("join")
	var out *storage.Flat
	if ws, rf, ok := db.parallelFor(c, rin, rTab.schema.RecordSize()); ok && alg == exec.JoinHash {
		if lf, lok := exec.AsFlat(lin); lok {
			out, err = exec.ParallelHashJoin(db.enc, ws, lf, rf, lcol, rcol, outSchema, name)
			if errors.Is(err, exec.ErrSerialFallback) {
				out, err = nil, nil
			}
		}
	}
	if out == nil && err == nil {
		out, err = exec.Join(c.enc, lin, rin, lcol, rcol, alg, exec.JoinOptions{OutSchema: outSchema}, name)
	}
	if err != nil {
		return nil, err
	}
	return db.wrapTemp(out), nil
}

// Collect decrypts a table's live rows into a Result.
func (db *DB) Collect(t *Table) (*Result, error) {
	c, release := db.beginRead()
	defer release()
	return db.collect(c, t)
}

// collect is Collect without the lock. Read-slot contexts stream the
// rows through their own view (the table's scratch is not theirs to
// use); the row order and contents match Flat.Rows exactly.
func (db *DB) collect(c *execCtx, t *Table) (*Result, error) {
	if t.flat == nil {
		return nil, fmt.Errorf("core: cannot collect an index-only table; select from it instead")
	}
	var rows []table.Row
	var err error
	if c.serial {
		rows, err = t.flat.Rows()
	} else {
		rows = make([]table.Row, 0, t.flat.NumRows())
		err = exec.ForEachRow(c.input(t.flat), func(_ int, r table.Row, used bool) error {
			if used {
				rows = append(rows, r.Clone())
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	cols := make([]string, t.schema.NumColumns())
	for i, c := range t.schema.Columns() {
		cols[i] = c.Name
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

// wrapTemp registers an operator output as an anonymous intermediate
// table handle.
func (db *DB) wrapTemp(f *storage.Flat) *Table {
	return &Table{name: f.Name(), schema: f.Schema(), kind: KindFlat, flat: f, keyCol: -1}
}

// useIndexFor is the engine-side half of the planner's access-method
// decision: a keyed read routes through the index exactly when
// planner.ChooseAccess — a function of public sizes only — prices it
// below a full flat scan, so execution always matches the annotated
// plan. Index-only tables have no flat fallback and always use it.
func (db *DB) useIndexFor(t *Table, key *KeyRange) bool {
	if t.index == nil || key == nil {
		return false
	}
	return planner.ChooseAccess(db.metaFor(t), plan.KeyRange{Lo: key.Lo, Hi: key.Hi}).UseIndex
}

// inputFor builds the operator input for a table, routing through the
// access method the planner prices cheaper (§3, §5):
//
//   - key range + index, when the index wins: oblivious index range scan
//     materialized into an intermediate table (leaking the scanned
//     segment's size, §4.1).
//   - flat representation: read directly; a key range the planner chose
//     NOT to serve through the index folds into the returned predicate
//     so the full scan still restricts correctly.
//   - index only, full scan: the ORAM bucket array scanned linearly as a
//     flat table (§3.2), at less than the full ORAM protocol's cost.
//
// It returns the effective predicate callers must use in place of the
// one passed in. release frees any intermediate resources.
//
// Index access from a read-slot context serializes behind the table's
// idxMu: Ring ORAM mutates its stash and position map even on reads, so
// two slots may not touch one index concurrently (different tables'
// indexes may — each lives on its own child enclave with its own
// sealer). Exclusive-side statements skip the lock: the database write
// lock already excludes every read slot.
func (db *DB) inputFor(c *execCtx, t *Table, key *KeyRange, pred table.Pred) (exec.Input, table.Pred, func(), error) {
	noop := func() {}
	if db.useIndexFor(t, key) {
		rows := make([]table.Row, 0, 64)
		if !c.serial {
			t.idxMu.Lock()
		}
		_, err := t.index.RangeScan(key.Lo, key.Hi, func(r table.Row) error {
			rows = append(rows, r.Clone())
			return nil
		})
		if !c.serial {
			t.idxMu.Unlock()
		}
		if err != nil {
			return nil, pred, noop, err
		}
		tmp, err := db.materialize(c, t.schema, rows, "range")
		if err != nil {
			return nil, pred, noop, err
		}
		return c.input(tmp), pred, noop, nil
	}
	if t.flat != nil {
		eff := pred
		if key != nil {
			if eff == nil {
				eff = table.All
			}
			eff = combinePred(t, eff, key)
		}
		return c.input(t.flat), eff, noop, nil
	}
	// Index-only full scan (an unkeyed read; keyed ones use the index).
	rows := make([]table.Row, 0, t.index.NumRows())
	if !c.serial {
		t.idxMu.Lock()
	}
	err := t.index.ScanRaw(func(r table.Row) error {
		rows = append(rows, r.Clone())
		return nil
	})
	if !c.serial {
		t.idxMu.Unlock()
	}
	if err != nil {
		return nil, pred, noop, err
	}
	tmp, err := db.materialize(c, t.schema, rows, "rawscan")
	if err != nil {
		return nil, pred, noop, err
	}
	return c.input(tmp), pred, noop, nil
}

// materialize writes rows into a fresh flat intermediate table at the
// engine's configured geometry, sealing one packed block at a time. The
// table lives on the context's enclave: its sealer and tracer are the
// statement's own.
func (db *DB) materialize(c *execCtx, s *table.Schema, rows []table.Row, op string) (*storage.Flat, error) {
	tmp, err := storage.NewFlatGeom(c.enc, db.tmpName(op), s, max(1, len(rows)), db.rowsPerBlockFor(s))
	if err != nil {
		return nil, err
	}
	w := tmp.NewBlockWriter()
	for _, r := range rows {
		if err := s.ValidateRow(r); err != nil {
			return nil, err
		}
		if err := w.Append(r, true); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	tmp.BumpRows(len(rows))
	return tmp, nil
}

// projection resolves a column list into an output schema and transform.
func (db *DB) projection(s *table.Schema, cols []string) (*table.Schema, Transform, error) {
	if len(cols) == 0 {
		return s, nil, nil
	}
	idx := make([]int, len(cols))
	outCols := make([]table.Column, len(cols))
	for i, name := range cols {
		c := s.ColIndex(name)
		if c < 0 {
			return nil, nil, fmt.Errorf("core: no column %q", name)
		}
		idx[i] = c
		outCols[i] = s.Col(c)
	}
	outSchema, err := table.NewSchema(outCols...)
	if err != nil {
		return nil, nil, err
	}
	tf := func(r table.Row) table.Row {
		out := make(table.Row, len(idx))
		for i, c := range idx {
			out[i] = r[c]
		}
		return out
	}
	return outSchema, tf, nil
}

// Transform re-exports the operator row transform for callers composing
// custom projections.
type Transform = exec.Transform
