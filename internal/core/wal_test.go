package core

import (
	"testing"

	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
)

func walSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindString, Width: 12},
	)
}

// buildWithWAL creates a journaled database, applies mutations, and
// returns the db and log.
func buildWithWAL(t *testing.T, kind StorageKind) (*DB, *wal.Log) {
	t.Helper()
	db := MustOpen(Config{})
	l, err := wal.New(db.Enclave(), "journal", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	opts := TableOptions{Kind: kind, Capacity: 64}
	if kind != KindFlat {
		opts.KeyColumn = "id"
	}
	if _, err := db.CreateTable("t", walSchema(), opts); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := db.Insert("t", table.Row{table.Int(i), table.Str("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Update("t",
		func(r table.Row) bool { return r[0].AsInt() < 3 },
		func(r table.Row) table.Row { r[1] = table.Str("updated"); return r }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("t", func(r table.Row) bool { return r[0].AsInt() >= 8 }, nil); err != nil {
		t.Fatal(err)
	}
	return db, l
}

func TestWALRecoveryReproducesState(t *testing.T) {
	for _, kind := range []StorageKind{KindFlat, KindBoth} {
		t.Run(kind.String(), func(t *testing.T) {
			db, l := buildWithWAL(t, kind)
			want, err := db.Select("t", nil, SelectOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// "Crash": a fresh engine, same schema, recovered from the log.
			db2 := MustOpen(Config{})
			opts := TableOptions{Kind: kind, Capacity: 64}
			if kind != KindFlat {
				opts.KeyColumn = "id"
			}
			if _, err := db2.CreateTable("t", walSchema(), opts); err != nil {
				t.Fatal(err)
			}
			if err := db2.Recover(l); err != nil {
				t.Fatal(err)
			}
			got, err := db2.Select("t", nil, SelectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("recovered %d rows, want %d", len(got.Rows), len(want.Rows))
			}
			byID := map[int64]string{}
			for _, r := range want.Rows {
				byID[r[0].AsInt()] = r[1].AsString()
			}
			for _, r := range got.Rows {
				if byID[r[0].AsInt()] != r[1].AsString() {
					t.Fatalf("row %d differs after recovery: %q", r[0].AsInt(), r[1].AsString())
				}
			}
		})
	}
}

func TestWALEntryCounts(t *testing.T) {
	_, l := buildWithWAL(t, KindFlat)
	// 10 inserts + 3 updates × 2 entries + 2 deletes.
	if l.Len() != 10+6+2 {
		t.Fatalf("journal has %d entries, want 18", l.Len())
	}
}

func TestWALAppendTraceIsOneSequentialWrite(t *testing.T) {
	// The paper's claim: logging adds one encrypted append per mutation
	// and nothing else — sequential slots, independent of content.
	tr := trace.New()
	db := MustOpen(Config{Tracer: tr})
	l, err := wal.New(db.Enclave(), "journal", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", walSchema(), TableOptions{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	_ = db.Insert("t", table.Row{table.Int(0), table.Str("x")}) // allocates the store
	tr.Reset()
	if err := db.Insert("t", table.Row{table.Int(1), table.Str("abc")}); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 || evs[0].Op != trace.Write || evs[0].Index != 1 {
		t.Fatalf("first access is %+v, want sequential journal write at slot 1", evs[0])
	}
}

func TestWALFullAndRegistrationErrors(t *testing.T) {
	db := MustOpen(Config{})
	l, _ := wal.New(db.Enclave(), "journal", 2)
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", walSchema(), TableOptions{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	_ = db.Insert("t", table.Row{table.Int(1), table.Str("a")})
	_ = db.Insert("t", table.Row{table.Int(2), table.Str("b")})
	if err := db.Insert("t", table.Row{table.Int(3), table.Str("c")}); err == nil {
		t.Fatal("append into full journal succeeded")
	}
	// Registration after appends must fail (entry size is fixed).
	if _, err := db.CreateTable("t2", walSchema(), TableOptions{Capacity: 8}); err == nil {
		t.Fatal("late registration accepted")
	}
}

func TestRecoverRequiresEmptyTables(t *testing.T) {
	db, l := buildWithWAL(t, KindFlat)
	if err := db.Recover(l); err == nil {
		t.Fatal("recovery into non-empty database accepted")
	}
}

func TestWALUnregisteredTableRejected(t *testing.T) {
	e := MustOpen(Config{})
	l, _ := wal.New(e.Enclave(), "j", 4)
	if err := l.Append(wal.Entry{Op: wal.OpInsert, Table: "ghost"}); err == nil {
		t.Fatal("append for unregistered table accepted")
	}
}
