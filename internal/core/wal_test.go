package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"oblidb/internal/crypt"
	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
)

func walTestSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "name", Kind: table.KindString, Width: 12},
	)
}

func openTestLog(t *testing.T, path string, key []byte, opts wal.Options) *wal.Log {
	t.Helper()
	l, err := wal.Open(path, key, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// snapshotRows reads every live row of a table as a sorted multiset of
// canonical strings, for cross-engine comparison.
func snapshotRows(t *testing.T, db *DB, name string) []string {
	t.Helper()
	res, err := db.Select(name, table.All, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func rowsDiffer(a, b []string) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// seededWorkload drives one engine through DDL and every mutation kind.
// base varies the values (never the shape) between runs.
func seededWorkload(t *testing.T, db *DB, base int64) {
	t.Helper()
	s := walTestSchema()
	if _, err := db.CreateTable("people", s, TableOptions{
		Kind: KindBoth, KeyColumn: "id", Capacity: 64}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := db.Insert("people", table.Row{table.Int(base + i),
			table.Str(fmt.Sprintf("p%d", base+i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Rewrite a slice of them.
	if _, err := db.Update("people",
		func(r table.Row) bool { return r[0].AsInt() < base+5 },
		func(r table.Row) table.Row {
			return table.Row{r[0], table.Str("renamed")}
		}, nil); err != nil {
		t.Fatal(err)
	}
	// Remove a different slice.
	if _, err := db.Delete("people",
		func(r table.Row) bool { return r[0].AsInt() >= base+15 }, nil); err != nil {
		t.Fatal(err)
	}
	// DDL after DML (the seed's WAL rejected this), plus a dropped table
	// so recovery replays a drop too.
	if _, err := db.CreateTable("scratch", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("scratch", table.Row{table.Int(base), table.Str("gone")}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("scratch"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("extra", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("extra", table.Row{table.Int(base + 100), table.Str("kept")}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryMatchesUninterrupted is the end-to-end durability
// contract: run a workload under a journal, "crash" (abandon the engine
// without any shutdown), recover a fresh engine from the same file, and
// compare every table's row multiset against an identical engine that
// never crashed.
func TestCrashRecoveryMatchesUninterrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()

	crashed := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{})
	if err := crashed.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	seededWorkload(t, crashed, 1000)
	// Crash: no Detach, no Close, no checkpoint. The file alone must
	// carry the state.
	l.Close()

	reference := MustOpen(Config{})
	seededWorkload(t, reference, 1000)

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}

	wantTables := []string{"extra", "people"}
	gotTables := recovered.Tables()
	sort.Strings(gotTables)
	if rowsDiffer(gotTables, wantTables) {
		t.Fatalf("recovered tables = %v, want %v", gotTables, wantTables)
	}
	for _, name := range wantTables {
		got := snapshotRows(t, recovered, name)
		want := snapshotRows(t, reference, name)
		if rowsDiffer(got, want) {
			t.Fatalf("recovered %q = %v, want %v", name, got, want)
		}
	}

	// The recovered engine keeps working — including through the index
	// the recovery rebuilt.
	res, err := recovered.Select("people", table.All,
		SelectOptions{KeyRange: &KeyRange{Lo: 1005, Hi: 1009}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("indexed select over recovered table returned %d rows", len(res.Rows))
	}
}

// TestRecoveredEngineContinuesJournaling closes the loop: recover, attach
// the same log, mutate more, crash again, recover again.
func TestRecoveredEngineContinuesJournaling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()

	db1 := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{})
	if err := db1.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	s := walTestSchema()
	if _, err := db1.CreateTable("t", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	if err := db1.Insert("t", table.Row{table.Int(1), table.Str("one")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	db2 := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := db2.Recover(l2); err != nil {
		t.Fatal(err)
	}
	if err := db2.AttachWAL(l2); err != nil {
		t.Fatal(err)
	}
	if err := db2.Insert("t", table.Row{table.Int(2), table.Str("two")}); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	db3 := MustOpen(Config{})
	l3 := openTestLog(t, path, key, wal.Options{})
	if err := db3.Recover(l3); err != nil {
		t.Fatal(err)
	}
	got := snapshotRows(t, db3, "t")
	if len(got) != 2 {
		t.Fatalf("after recover-attach-recover: rows = %v", got)
	}
}

// TestDDLAfterDMLJournaled pins the first fixed bug: the seed's WAL
// fixed its record size at the first row append and rejected any CREATE
// TABLE after it.
func TestDDLAfterDMLJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	db := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	s := walTestSchema()
	if _, err := db.CreateTable("first", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("first", table.Row{table.Int(1), table.Str("a")}); err != nil {
		t.Fatal(err)
	}
	// A second table, with a *different* row size, after the first
	// journaled mutation.
	wide := table.MustSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindString, Width: 40},
	)
	if _, err := db.CreateTable("second", wide, TableOptions{Capacity: 16}); err != nil {
		t.Fatalf("DDL after DML rejected: %v", err)
	}
	if err := db.Insert("second", table.Row{table.Int(2), table.Str("wide row")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotRows(t, recovered, "first"); len(got) != 1 {
		t.Fatalf("first = %v", got)
	}
	if got := snapshotRows(t, recovered, "second"); len(got) != 1 {
		t.Fatalf("second = %v", got)
	}
}

// TestFailingUpdaterJournalsNothing pins the second fixed bug: the seed
// journaled each post-image *before* writing it, so an updater that
// failed partway left the log ahead of the table. Now the whole pass is
// validated up front: nothing applies, nothing is journaled.
func TestFailingUpdaterJournalsNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	db := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	s := walTestSchema()
	if _, err := db.CreateTable("t", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if err := db.Insert("t", table.Row{table.Int(i), table.Str("ok")}); err != nil {
			t.Fatal(err)
		}
	}
	before := snapshotRows(t, db, "t")
	entriesBefore := l.Len()

	// The post-image for id 4 is invalid (string wider than the column),
	// and with ascending scan order earlier rows would already have been
	// rewritten by the time the bad one surfaces — were the pass not
	// validated up front.
	_, err := db.Update("t", table.All, func(r table.Row) table.Row {
		if r[0].AsInt() == 4 {
			return table.Row{r[0], table.Str("this string does not fit in twelve")}
		}
		return table.Row{r[0], table.Str("rewritten")}
	}, nil)
	if err == nil {
		t.Fatal("invalid post-image did not fail the update")
	}
	if got := snapshotRows(t, db, "t"); rowsDiffer(got, before) {
		t.Fatalf("failed update left ghosts in memory: %v != %v", got, before)
	}
	if l.Len() != entriesBefore || l.Staged() != 0 {
		t.Fatalf("failed update left journal records: Len %d->%d, %d staged",
			entriesBefore, l.Len(), l.Staged())
	}
	l.Close()

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotRows(t, recovered, "t"); rowsDiffer(got, before) {
		t.Fatalf("failed update leaked into recovery: %v != %v", got, before)
	}
}

// TestFailedInsertRolledBack drives the single-statement rollback path:
// a batch insert whose later row is invalid must undo its earlier rows
// both in memory and in the journal.
func TestFailedInsertRolledBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	db := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	s := walTestSchema()
	if _, err := db.CreateTable("t", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	err := db.Insert("t",
		table.Row{table.Int(1), table.Str("good")},
		table.Row{table.Int(2), table.Str("also fine")},
		table.Row{table.Int(3), table.Str("much too long for the column")},
	)
	if err == nil {
		t.Fatal("invalid row did not fail the insert")
	}
	if got := snapshotRows(t, db, "t"); len(got) != 0 {
		t.Fatalf("failed insert left rows: %v", got)
	}
	if err := db.Insert("t", table.Row{table.Int(9), table.Str("after")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotRows(t, recovered, "t"); len(got) != 1 {
		t.Fatalf("recovered rows = %v, want just id 9", got)
	}
}

// TestAttachSnapshotsExistingState: attaching a journal to a database
// that already has tables checkpoints a full snapshot, so the file is
// self-contained from that moment.
func TestAttachSnapshotsExistingState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	db := MustOpen(Config{})
	s := walTestSchema()
	if _, err := db.CreateTable("pre", s, TableOptions{Capacity: 16}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("pre", table.Row{table.Int(1), table.Str("existing")}); err != nil {
		t.Fatal(err)
	}
	l := openTestLog(t, path, key, wal.Options{})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotRows(t, recovered, "pre"); len(got) != 1 {
		t.Fatalf("pre-attach state not snapshotted: %v", got)
	}
}

// TestAutoCheckpointCompacts: with a byte threshold configured, the
// journal compacts itself mid-workload and recovery still sees the full
// state.
func TestAutoCheckpointCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()
	db := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{AutoCheckpointBytes: 2048})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	s := walTestSchema()
	if _, err := db.CreateTable("t", s, TableOptions{Capacity: 128}); err != nil {
		t.Fatal(err)
	}
	// Insert+delete churn: the live state stays tiny while the history
	// grows, so compaction must actually shrink the file.
	for i := int64(0); i < 60; i++ {
		if err := db.Insert("t", table.Row{table.Int(i), table.Str("x")}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := db.Delete("t", func(r table.Row) bool {
				return r[0].AsInt() == i
			}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if db.WALStats().Checkpoints == 0 {
		t.Fatal("journal never auto-checkpointed")
	}
	before := snapshotRows(t, db, "t")
	l.Close()

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	if got := snapshotRows(t, recovered, "t"); rowsDiffer(got, before) {
		t.Fatalf("recovered %v, want %v", got, before)
	}
}

// TestRecoveryTraceLeakage pins what recovery reveals to the host: the
// untrusted access stream of replay plus rebuild is a function of the
// log's record count and the tables' final sizes — never of row values.
func TestRecoveryTraceLeakage(t *testing.T) {
	run := func(base int64) *trace.Tracer {
		dir := t.TempDir()
		path := filepath.Join(dir, "j.wal")
		key := crypt.NewRandomKey()
		db := MustOpen(Config{})
		l := openTestLog(t, path, key, wal.Options{})
		if err := db.AttachWAL(l); err != nil {
			t.Fatal(err)
		}
		seededWorkload(t, db, base)
		l.Close()

		tr := trace.New()
		// Pin the enclave PRNG so ORAM leaf assignment is identical across
		// the two runs: with the randomness equalized, any trace divergence
		// is value leakage.
		recovered := MustOpen(Config{Tracer: tr, Seed: 7})
		l2 := openTestLog(t, path, key, wal.Options{Tracer: tr})
		if err := recovered.Recover(l2); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(1000)
	b := run(5000)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("recovery trace depends on row values: %s", d)
	}
}

// TestRecoverRequiresEmptyDB guards the recovery precondition.
func TestRecoverRequiresEmptyDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	db := MustOpen(Config{})
	if _, err := db.CreateTable("t", walTestSchema(), TableOptions{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	l := openTestLog(t, path, crypt.NewRandomKey(), wal.Options{})
	if err := db.Recover(l); err == nil {
		t.Fatal("recovery into a non-empty database succeeded")
	}
}

// TestDoubleAttachRejected guards the attach precondition.
func TestDoubleAttachRejected(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Config{})
	l := openTestLog(t, filepath.Join(dir, "a.wal"), crypt.NewRandomKey(), wal.Options{})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	l2 := openTestLog(t, filepath.Join(dir, "b.wal"), crypt.NewRandomKey(), wal.Options{})
	if err := db.AttachWAL(l2); err == nil {
		t.Fatal("second attach succeeded")
	}
}

// TestCrashRecoveryIndexOnlyTable is the kill-and-restart check for the
// indexed storage method: an index-only table's definition and mutations
// live solely in one WAL file across a crash, recovery rebuilds the ORAM
// B+ tree, and keyed reads route through it again.
func TestCrashRecoveryIndexOnlyTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	key := crypt.NewRandomKey()

	crashed := MustOpen(Config{})
	l := openTestLog(t, path, key, wal.Options{})
	if err := crashed.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	s := walTestSchema()
	if _, err := crashed.CreateTable("kv", s, TableOptions{
		Kind: KindIndexed, KeyColumn: "id", Capacity: 64}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := crashed.Insert("kv", table.Row{table.Int(i), table.Str(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := crashed.Update("kv", nil, func(r table.Row) table.Row {
		r[1] = table.Str("seven")
		return r
	}, Point(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := crashed.Delete("kv", nil, Point(3)); err != nil {
		t.Fatal(err)
	}
	// Crash: no Detach, no checkpoint — the file alone carries the state.
	l.Close()

	recovered := MustOpen(Config{})
	l2 := openTestLog(t, path, key, wal.Options{})
	if err := recovered.Recover(l2); err != nil {
		t.Fatal(err)
	}
	tab, err := recovered.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Kind() != KindIndexed || tab.Flat() != nil || tab.Index() == nil {
		t.Fatalf("recovered table: kind=%v flat=%v", tab.Kind(), tab.Flat())
	}
	if n := tab.NumRows(); n != 19 {
		t.Fatalf("recovered rows = %d, want 19", n)
	}

	// Keyed reads go through the rebuilt index (index-only tables have no
	// other path) and see the post-crash state: the update applied, the
	// deleted key gone, untouched keys intact.
	check := func(k int64, want ...string) {
		t.Helper()
		res, err := recovered.Select("kv", nil, SelectOptions{KeyRange: Point(k)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("key %d: %d rows, want %d", k, len(res.Rows), len(want))
		}
		if len(want) == 1 && res.Rows[0][1].AsString() != want[0] {
			t.Fatalf("key %d: value %q, want %q", k, res.Rows[0][1].AsString(), want[0])
		}
		if !recovered.LastPlan.UsedIndex {
			t.Fatalf("key %d: keyed read did not use the recovered index", k)
		}
	}
	check(7, "seven")
	check(3)
	check(11, "v11")
}
