package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"oblidb/internal/crypt"
	"oblidb/internal/faultstore"
	"oblidb/internal/oberr"
	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
)

// faultStatements is the containment workload: every mutation kind,
// DDL included, as individually retriable statements. base varies the
// values (never the shape) between runs.
func faultStatements(base int64) []func(*DB) error {
	s := walTestSchema()
	stmts := []func(*DB) error{
		func(db *DB) error {
			_, err := db.CreateTable("ft", s, TableOptions{Capacity: 32})
			return err
		},
	}
	for b := int64(0); b < 3; b++ {
		b := b
		stmts = append(stmts, func(db *DB) error {
			rows := make([]table.Row, 0, 4)
			for i := int64(0); i < 4; i++ {
				v := base + 4*b + i
				rows = append(rows, table.Row{table.Int(v), table.Str(fmt.Sprintf("r%d", v))})
			}
			return db.Insert("ft", rows...)
		})
	}
	stmts = append(stmts,
		func(db *DB) error {
			_, err := db.Update("ft",
				func(r table.Row) bool { return r[0].AsInt() < base+4 },
				func(r table.Row) table.Row { return table.Row{r[0], table.Str("upd")} }, nil)
			return err
		},
		func(db *DB) error {
			_, err := db.Delete("ft",
				func(r table.Row) bool { return r[0].AsInt() >= base+9 }, nil)
			return err
		},
		func(db *DB) error {
			_, err := db.CreateTable("scratch", s, TableOptions{Capacity: 16})
			return err
		},
		func(db *DB) error {
			return db.Insert("scratch", table.Row{table.Int(base), table.Str("gone")})
		},
		func(db *DB) error { return db.DropTable("scratch") },
		func(db *DB) error {
			return db.Insert("ft", table.Row{table.Int(base + 50), table.Str("tail")})
		},
	)
	return stmts
}

// runFaultWorkload drives the containment workload on a journaled
// engine under the given injector, retrying each statement on typed
// retriable errors. It returns the final row snapshot and the journal
// path for recovery cross-checks.
func runFaultWorkload(t *testing.T, key []byte, inj *faultstore.Injector, base int64) (rows []string, walPath string, accesses uint64) {
	t.Helper()
	walPath = filepath.Join(t.TempDir(), "fault.wal")
	db := MustOpen(Config{Key: key, Seed: 7, RowsPerBlock: 4, Fault: inj})
	l := openTestLog(t, walPath, key, wal.Options{})
	if err := db.AttachWAL(l); err != nil {
		t.Fatal(err)
	}
	for si, stmt := range faultStatements(base) {
		for attempt := 0; ; attempt++ {
			err := stmt(db)
			if err == nil {
				break
			}
			if !oberr.Retriable(err) {
				t.Fatalf("statement %d failed with a non-retriable error: %v", si, err)
			}
			if attempt > 4 {
				t.Fatalf("statement %d still failing after %d attempts: %v", si, attempt, err)
			}
		}
		if berr := db.Broken(); berr != nil {
			t.Fatalf("single-fault workload broke the engine at statement %d: %v", si, berr)
		}
	}
	// The access count is taken before the snapshot read: the sweep must
	// only target accesses the (retriable) statements perform, not the
	// test's own verification Select.
	accesses = inj.Accesses()
	return snapshotRows(t, db, "ft"), walPath, accesses
}

// TestFaultAtEveryAccessIndexContained is the containment pin: inject
// one transient store fault at every access index of a workload and
// require the final state — and the state a fresh engine recovers from
// the journal — to match the fault-free reference exactly. A fault
// mid-mutation must roll back via the undo log and surface as a typed
// retriable error; a retry must then land the statement as if the
// fault never happened.
func TestFaultAtEveryAccessIndexContained(t *testing.T) {
	key := crypt.NewRandomKey()
	counter := faultstore.NewInjector(faultstore.Schedule{})
	ref, _, n := runFaultWorkload(t, key, counter, 100)
	if n == 0 {
		t.Fatal("workload performed no store accesses")
	}
	stride := uint64(1)
	if testing.Short() {
		stride = n/40 + 1
	}
	for k := uint64(0); k < n; k += stride {
		inj := faultstore.NewInjector(faultstore.Schedule{FailAt: []uint64{k}, MaxFaults: 1})
		got, walPath, _ := runFaultWorkload(t, key, inj, 100)
		if inj.Injected() != 1 {
			t.Fatalf("fault at access %d never fired (injected=%d)", k, inj.Injected())
		}
		if rowsDiffer(ref, got) {
			t.Fatalf("fault at access %d diverged the engine:\n got %v\nwant %v", k, got, ref)
		}
		// The journal must describe the same state: recover it into a
		// fresh, fault-free engine and compare again.
		l := openTestLog(t, walPath, key, wal.Options{})
		rec := MustOpen(Config{Key: key, Seed: 7, RowsPerBlock: 4})
		if err := rec.Recover(l); err != nil {
			t.Fatalf("fault at access %d left an unrecoverable journal: %v", k, err)
		}
		if got := snapshotRows(t, rec, "ft"); rowsDiffer(ref, got) {
			t.Fatalf("fault at access %d diverged the journal:\n got %v\nwant %v", k, got, ref)
		}
	}
}

// TestFaultTraceIdentity pins the obliviousness of injection and
// retries: two workloads with the same statement shapes but different
// data, run under the same fault schedule with the same retry policy,
// must emit byte-identical traces — the fault decisions key on access
// index only, so the truncation points and retries line up exactly.
func TestFaultTraceIdentity(t *testing.T) {
	key := crypt.NewRandomKey()
	fingerprint := func(base int64) [32]byte {
		tr := trace.New()
		inj := faultstore.NewInjector(faultstore.Schedule{Seed: 99, ReadFault: 0.01, WriteFault: 0.01})
		db := MustOpen(Config{Key: key, Seed: 7, RowsPerBlock: 4, Tracer: tr, Fault: inj})
		l := openTestLog(t, filepath.Join(t.TempDir(), "ti.wal"), key, wal.Options{})
		if err := db.AttachWAL(l); err != nil {
			t.Fatal(err)
		}
		for si, stmt := range faultStatements(base) {
			for attempt := 0; ; attempt++ {
				err := stmt(db)
				if err == nil {
					break
				}
				if !oberr.Retriable(err) {
					t.Fatalf("statement %d: non-retriable %v", si, err)
				}
				if attempt > 50 {
					t.Fatalf("statement %d: no progress after %d attempts", si, attempt)
				}
			}
		}
		return tr.Fingerprint()
	}
	if fingerprint(100) != fingerprint(7700) {
		t.Fatal("same-shape/different-data workloads diverged their traces under one fault schedule")
	}
}
