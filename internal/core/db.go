// Package core is the ObliDB engine: tables stored by the flat and/or
// indexed methods (§3), the oblivious operators of §4 dispatched through
// the query planner of §5, integrity checking throughout, and the padding
// mode of §7.2. It is the paper's primary contribution assembled into a
// database; the oblidb root package re-exports it as the public API.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/indexed"
	"oblidb/internal/planner"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
	"oblidb/internal/wal"
)

// StorageKind selects a table's storage method(s) (§3): flat, indexed, or
// both — "each table can be stored using one or both methods, similarly to
// how administrators can decide to create indexes in traditional
// databases".
type StorageKind int

const (
	// KindFlat stores the table as contiguous sealed blocks, always
	// scanned in full.
	KindFlat StorageKind = iota
	// KindIndexed stores the table in an oblivious B+ tree over ORAM.
	KindIndexed
	// KindBoth maintains both representations, paying double on writes to
	// serve both point and analytic reads well (§3.3).
	KindBoth
)

// String names the storage kind.
func (k StorageKind) String() string {
	switch k {
	case KindFlat:
		return "flat"
	case KindIndexed:
		return "indexed"
	case KindBoth:
		return "both"
	}
	return fmt.Sprintf("StorageKind(%d)", int(k))
}

// PaddingConfig enables the paper's padding mode: "all intermediate
// results are padded to a chosen size and query optimization is not
// applied" (§2.3).
type PaddingConfig struct {
	// Enabled turns padding mode on.
	Enabled bool
	// PadRows is the size every intermediate and result table is padded
	// to.
	PadRows int
	// PadGroups is the group count grouped aggregation pads to (the
	// "maximum supported number of groups", §7.2).
	PadGroups int
}

// Config configures a database.
type Config struct {
	// ObliviousMemory is the enclave's oblivious memory budget in bytes
	// (default: the paper's 20 MB).
	ObliviousMemory int
	// Tracer observes all untrusted accesses (tests).
	Tracer *trace.Tracer
	// Key is the AES-256 data key (random if nil).
	Key []byte
	// Seed seeds enclave randomness (derived from key if zero).
	Seed uint64
	// Planner tunes operator choice; Planner.DisableContinuous removes
	// the Continuous algorithm's contiguity leakage.
	Planner planner.Config
	// Padding configures padding mode.
	Padding PaddingConfig
	// Parallelism bounds the intra-query worker pool: queries are split
	// into up to this many equal padded partitions executed concurrently
	// (the per-query count is chosen by the planner from public sizes
	// alone). 0 or 1 keeps the engine serial; -1 uses GOMAXPROCS. The
	// pool size is public configuration, like the epoch cadence.
	Parallelism int
	// RowsPerBlock is the packing factor R: how many records each sealed
	// block holds. Every full-table pass costs one AEAD open/seal per
	// block, so packing divides the crypto and trace cost of scans by R.
	// 0 (the default) sizes blocks to ~4 KiB of plaintext per table;
	// 1 reproduces the paper's one-record-per-block geometry. R is public
	// geometry, like table sizes — traces depend only on the pair
	// (capacity, R).
	RowsPerBlock int
	// WorkerTracers, if non-nil, must hold one tracer per worker; each
	// worker's untrusted accesses — the adversarial view of one core —
	// are recorded there. Tests assert the multiset of worker traces is
	// input-independent (trace.MultisetFingerprint).
	WorkerTracers []*trace.Tracer
	// ReadConcurrency sizes the read-slot context pool: up to this many
	// read statements execute concurrently under the shared side of the
	// database lock, each on its own enclave replica (own sealer, PRNG
	// stream, tracer, scratch). 0 or 1 keeps reads on the exclusive lock
	// — the serial engine, byte-identical traces; -1 uses GOMAXPROCS.
	// The pool size is public configuration, like the epoch cadence.
	ReadConcurrency int
	// ReadTracers, if non-nil, must hold one tracer per read-slot
	// context; each slot's untrusted accesses are recorded there. Tests
	// assert the multiset of read-slot traces is interleaving-independent
	// (trace.EventMultisetFingerprint).
	ReadTracers []*trace.Tracer
	// StoreLatency models the cost of one untrusted-memory block access
	// (see enclave.Config.StoreLatency). Zero keeps untrusted memory at
	// in-process speed; benchmarks set it to measure latency-hiding read
	// concurrency.
	StoreLatency time.Duration
	// Fault, if non-nil, models the unreliable untrusted host: it is
	// consulted once per sealed-block access and may transiently fail
	// it (see enclave.Config.Fault and internal/faultstore). Faulted
	// mutations roll back through the undo log and surface as typed
	// retriable errors; the chaos difftests drive entire workloads
	// through this knob.
	Fault enclave.FaultInjector
}

// DB is an ObliDB database: an enclave plus its tables.
//
// Concurrency: the database lock is a read/write mutex. Mutations, DDL,
// and transactions take the exclusive side — one at a time, exactly the
// seed engine. Read statements take the shared side plus a per-slot
// execution context from a fixed pool (Config.ReadConcurrency), so up
// to that many reads run truly in parallel: each context carries its
// own enclave replica (sealer, PRNG stream, tracer, accountant) and its
// own per-table read views, while ORAM-backed index access — which
// mutates stash and position map even on reads — serializes behind a
// per-table lock (Table.idxMu). The catalog is resolved against a
// copy-on-write snapshot republished on every DDL. With
// ReadConcurrency ≤ 1 reads also take the exclusive side and run on the
// engine's own context, preserving the serial engine's byte-identical
// traces. Statement-internal partition parallelism
// (Config.Parallelism) is unchanged and orthogonal; it stays exclusive
// to the serial context. Exported methods lock and delegate to
// unexported, unlocked variants; internal cross-calls use the unlocked
// variants so the mutex is never taken reentrantly. See DESIGN.md §16.
type DB struct {
	mu      sync.RWMutex
	enc     *enclave.Enclave
	cfg     Config
	tables  map[string]*Table
	workers []*enclave.Enclave // intra-query worker pool (nil when serial)
	// snap is the latest published catalog snapshot; readCtxs is the
	// read-slot context pool (nil when reads serialize); serialCtx is
	// the engine's own context for exclusive-side statements; lockC
	// counts lock traffic for the contention metrics.
	snap      atomic.Pointer[catalogSnap]
	readCtxs  chan *execCtx
	readEncs  []*enclave.Enclave // the pool's replica enclaves (stats)
	serialCtx *execCtx
	lockC     lockCounters
	// planMu guards LastPlan and picks: read slots record planner
	// decisions while holding only the shared database lock.
	planMu sync.Mutex
	tmpSeq atomic.Int64
	// wal, when attached, journals every applied mutation; the staged
	// batch commits durably when the statement (or explicit transaction)
	// does. recovering suppresses re-logging during replay.
	wal        *wal.Log
	recovering bool
	// inTx defers the journal commit across statements (ExecutePlanTx);
	// undo records how to reverse applied-but-uncommitted changes, and
	// inUndo suppresses tracking while it replays (see wal.go).
	inTx   bool
	inUndo bool
	undo   []undoRec
	// broken latches when fault containment itself fails — a rollback
	// hit a second store fault — so the in-memory state can no longer
	// be trusted. Every subsequent statement is refused with a typed
	// CodeEngineFailed error; the remedy is recovery from the journal
	// on a fresh engine (see wal.go and DESIGN.md §17). Written under
	// the exclusive lock; read under either side.
	broken error
	// LastPlan records the most recent planner decisions, exposed for the
	// planner-effectiveness experiments (Figure 13/14). It is written
	// under the database mutex; read it only while no other goroutine is
	// running queries (the experiments are single-threaded).
	LastPlan PlanInfo
	// picks tallies every runtime operator-algorithm decision (guarded
	// by mu); PlanStats reports a copy.
	picks PickStats
	// catEpoch counts catalog changes (CreateTable/DropTable). Compiled
	// plans cache catalog-derived decisions — access paths, join splits
	// — so plan caches key their entries to the epoch and recompile
	// after DDL instead of replaying stale decisions. It lives here, on
	// the engine that owns the catalog, so DDL through any surface (SQL
	// or the embedded-engine API) invalidates alike.
	catEpoch uint64
}

// CatalogEpoch reports the current catalog version; it changes exactly
// when CreateTable or DropTable succeeds. It reads the published
// snapshot, so it never blocks behind a running statement.
func (db *DB) CatalogEpoch() uint64 {
	return db.snap.Load().epoch
}

// PickStats counts the planner's runtime algorithm picks — one tally
// per operator execution, keyed by the chosen variant. Everything here
// is already-conceded plan leakage (§2.3), which is why the server may
// publish it over the wire.
type PickStats struct {
	// Select and Join count picks per algorithm name.
	Select map[string]uint64
	Join   map[string]uint64
	// Sorts and Limits count oblivious ORDER BY and LIMIT executions.
	Sorts, Limits uint64
}

// clone deep-copies the counters.
func (p PickStats) clone() PickStats {
	out := PickStats{Sorts: p.Sorts, Limits: p.Limits}
	if p.Select != nil {
		out.Select = make(map[string]uint64, len(p.Select))
		for k, v := range p.Select {
			out.Select[k] = v
		}
	}
	if p.Join != nil {
		out.Join = make(map[string]uint64, len(p.Join))
		for k, v := range p.Join {
			out.Join[k] = v
		}
	}
	return out
}

// PlanStats reports the engine's per-algorithm pick counters.
func (db *DB) PlanStats() PickStats {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	return db.picks.clone()
}

// pickSelect, pickJoin, pickSort, and pickLimit tally one runtime
// algorithm decision each; planMu makes them safe from read slots.
func (db *DB) pickSelect(name string) {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	if db.picks.Select == nil {
		db.picks.Select = make(map[string]uint64)
	}
	db.picks.Select[name]++
}

func (db *DB) pickJoin(name string) {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	if db.picks.Join == nil {
		db.picks.Join = make(map[string]uint64)
	}
	db.picks.Join[name]++
}

func (db *DB) pickSort() {
	db.planMu.Lock()
	db.picks.Sorts++
	db.planMu.Unlock()
}

func (db *DB) pickLimit() {
	db.planMu.Lock()
	db.picks.Limits++
	db.planMu.Unlock()
}

// setLastPlan records the most recent planner decisions under planMu;
// setLastJoin updates just the join pick (joins run select sub-plans
// first, which overwrite the whole record).
func (db *DB) setLastPlan(p PlanInfo) {
	db.planMu.Lock()
	db.LastPlan = p
	db.planMu.Unlock()
}

func (db *DB) setLastJoin(alg exec.JoinAlgorithm) {
	db.planMu.Lock()
	db.LastPlan.JoinAlg = alg
	db.planMu.Unlock()
}

// IOStats folds the sealed-block I/O tallies of the main enclave, every
// Split worker, and every read-slot replica into one snapshot — the
// per-worker tallies are the per-core adversarial views, and their sum
// is the total sealed-block traffic the host observed.
func (db *DB) IOStats() enclave.IOSnapshot {
	s := db.enc.IOStats()
	for _, w := range db.workers {
		s.Add(w.IOStats())
	}
	for _, r := range db.readEncs {
		s.Add(r.IOStats())
	}
	return s
}

// StorageGeomStats describes the flat tables at one packing geometry
// (rows-per-block value): counts of tables, sealed blocks, live rows,
// and untrusted bytes including sealing overhead. All public sizes.
type StorageGeomStats struct {
	Tables, Blocks, Rows int
	UntrustedBytes       int
}

// StorageStats reports flat-storage gauges grouped by packing geometry
// R. The key set is the distinct R values in use — a small closed set
// (the configured knob or the per-schema ~4 KiB default), never
// data-derived.
func (db *DB) StorageStats() map[int]StorageGeomStats {
	db.lockWrite()
	defer db.mu.Unlock()
	out := make(map[int]StorageGeomStats)
	for _, t := range db.tables {
		if t.flat == nil {
			continue // indexed-only tables live in ORAM, counted via IOStats
		}
		g := out[t.flat.RowsPerBlock()]
		g.Tables++
		g.Blocks += t.flat.NumBlocks()
		g.Rows += t.flat.NumRows()
		g.UntrustedBytes += t.flat.Store().SizeBytes()
		out[t.flat.RowsPerBlock()] = g
	}
	return out
}

// PlanInfo reports which physical operators the planner chose — exactly
// the information the paper concedes a query plan leaks (§2.3).
type PlanInfo struct {
	SelectAlg exec.SelectAlgorithm
	JoinAlg   exec.JoinAlgorithm
	UsedIndex bool
	Stats     planner.SelectStats
}

// Open creates a database inside a fresh simulated enclave.
func Open(cfg Config) (*DB, error) {
	if cfg.Padding.Enabled && cfg.Padding.PadRows <= 0 {
		return nil, fmt.Errorf("core: padding mode needs a positive PadRows")
	}
	enc, err := enclave.New(enclave.Config{
		ObliviousMemory: cfg.ObliviousMemory,
		Tracer:          cfg.Tracer,
		Key:             cfg.Key,
		Seed:            cfg.Seed,
		StoreLatency:    cfg.StoreLatency,
		Fault:           cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{enc: enc, cfg: cfg, tables: make(map[string]*Table)}
	p := cfg.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > 1 {
		db.workers, err = enc.Split(p, cfg.WorkerTracers)
		if err != nil {
			return nil, err
		}
	} else if cfg.WorkerTracers != nil {
		return nil, fmt.Errorf("core: WorkerTracers set on a serial engine")
	}
	db.serialCtx = &execCtx{db: db, enc: enc, serial: true}
	rc := cfg.ReadConcurrency
	if rc < 0 {
		rc = runtime.GOMAXPROCS(0)
	}
	if rc > 1 {
		if cfg.ReadTracers != nil && len(cfg.ReadTracers) != rc {
			return nil, fmt.Errorf("core: ReadTracers has %d tracers for %d read slots", len(cfg.ReadTracers), rc)
		}
		db.readCtxs = make(chan *execCtx, rc)
		for i := 0; i < rc; i++ {
			var tr *trace.Tracer
			if cfg.ReadTracers != nil {
				tr = cfg.ReadTracers[i]
			}
			r, err := enc.Replica(i, tr)
			if err != nil {
				return nil, err
			}
			db.readEncs = append(db.readEncs, r)
			db.readCtxs <- &execCtx{db: db, enc: r, views: make(map[*storage.Flat]*storage.ReadView)}
		}
	} else if cfg.ReadTracers != nil {
		return nil, fmt.Errorf("core: ReadTracers set on a serial-read engine")
	}
	db.snap.Store(&catalogSnap{tables: map[string]*Table{}})
	return db, nil
}

// Parallelism reports the worker-pool size (1 when serial).
func (db *DB) Parallelism() int {
	if len(db.workers) == 0 {
		return 1
	}
	return len(db.workers)
}

// MustOpen is Open for tests and examples with known-good configs.
func MustOpen(cfg Config) *DB {
	db, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Enclave exposes the underlying enclave (budget accounting, tracing).
func (db *DB) Enclave() *enclave.Enclave { return db.enc }

// Table is one named table with its storage representations.
type Table struct {
	name     string
	schema   *table.Schema
	kind     StorageKind
	flat     *storage.Flat
	index    *indexed.Table
	keyCol   int  // indexed column; -1 if none
	oblivIn  bool // inserts scan obliviously rather than appending
	recORAM  bool // index uses the recursive position map
	capacity int  // creation capacity (flat growth is read live)
	// idxMu serializes index access from concurrent read slots: Ring
	// ORAM mutates its stash and position map even on reads, so index
	// reads are exclusive per table while flat reads of other tables
	// proceed. Exclusive-side statements already hold the database
	// write lock and skip it.
	idxMu sync.Mutex
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *table.Schema { return t.schema }

// Kind returns the storage method(s).
func (t *Table) Kind() StorageKind { return t.kind }

// NumRows returns the live row count (trusted metadata; its value is
// public, like all table sizes).
func (t *Table) NumRows() int {
	if t.flat != nil {
		return t.flat.NumRows()
	}
	return t.index.NumRows()
}

// Flat exposes the flat representation (nil for indexed-only tables).
func (t *Table) Flat() *storage.Flat { return t.flat }

// Index exposes the ORAM-backed indexed representation (nil for
// flat-only tables).
func (t *Table) Index() *indexed.Table { return t.index }

// KeyColumn returns the indexed column index, or -1.
func (t *Table) KeyColumn() int { return t.keyCol }

// TableOptions configures table creation.
type TableOptions struct {
	// Kind selects the storage method(s). Default KindFlat.
	Kind StorageKind
	// KeyColumn names the indexed column (required for KindIndexed and
	// KindBoth; must be an INTEGER column).
	KeyColumn string
	// Capacity is the maximum row count (default 1024). Flat tables grow
	// by copying when full; indexes are fixed at creation.
	Capacity int
	// ObliviousInserts makes flat inserts scan the whole table instead of
	// using the constant-time append variant (§3.1).
	ObliviousInserts bool
	// RecursiveORAM uses the recursive position map for the index
	// (Appendix B), shrinking oblivious memory use ~2× slower.
	RecursiveORAM bool
}

// CreateTable creates a table. With a journal attached the definition is
// journaled too (so recovery rebuilds the catalog), and DDL works at any
// point in the log's life — the seed's WAL fixed its entry size at the
// first append and rejected later registrations.
func (db *DB) CreateTable(name string, schema *table.Schema, opts TableOptions) (*Table, error) {
	db.lockWrite()
	defer db.mu.Unlock()
	wm, um := db.mutationMarks()
	t, err := db.createTableBody(name, schema, opts)
	if e := db.endMutation(err, wm, um); e != nil {
		return nil, e
	}
	return t, nil
}

// createTableBody is CreateTable without lock or journal commit.
func (db *DB) createTableBody(name string, schema *table.Schema, opts TableOptions) (*Table, error) {
	lname := strings.ToLower(name)
	if _, exists := db.tables[lname]; exists {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 1024
	}
	t := &Table{
		name: name, schema: schema, kind: opts.Kind, keyCol: -1,
		oblivIn: opts.ObliviousInserts, recORAM: opts.RecursiveORAM, capacity: capacity,
	}
	if opts.Kind == KindFlat || opts.Kind == KindBoth {
		f, err := storage.NewFlatGeom(db.enc, name+".flat", schema, capacity, db.rowsPerBlockFor(schema))
		if err != nil {
			return nil, err
		}
		t.flat = f
	}
	if opts.Kind == KindIndexed || opts.Kind == KindBoth {
		if opts.KeyColumn == "" {
			return nil, fmt.Errorf("core: %s table %q needs a key column", opts.Kind, name)
		}
		col := schema.ColIndex(opts.KeyColumn)
		if col < 0 {
			return nil, fmt.Errorf("core: key column %q not in schema", opts.KeyColumn)
		}
		// The index lives on a child enclave with its own sealer: two
		// read slots may hit two different tables' indexes concurrently,
		// and a sealer is single-stream. The child shares the parent's
		// accountant, tracer, and seed, so budget, trace, and ORAM leaf
		// assignment are identical to building on db.enc directly.
		ienc, err := db.enc.Child(name + ".index")
		if err != nil {
			return nil, err
		}
		idx, err := indexed.New(ienc, name+".index", schema, col, capacity, indexed.Options{
			RecursiveORAM: opts.RecursiveORAM,
			RowsPerBlock:  db.rowsPerBlockFor(schema),
		})
		if err != nil {
			return nil, err
		}
		t.index = idx
		t.keyCol = col
	}
	db.tables[lname] = t
	db.publishCatalog()
	if db.trackingMutations() {
		db.undo = append(db.undo, undoRec{op: undoCreate, table: t.name})
		if db.wal != nil {
			if err := db.wal.AppendCreate(db.tableDef(t)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Table looks up a table by name (case-insensitive). Lookup reads the
// catalog only, so it takes the shared lock: compilation and metadata
// probes must not park an epoch's read slots behind an exclusive
// acquisition.
func (db *DB) Table(name string) (*Table, error) {
	db.lockShared()
	defer db.mu.RUnlock()
	return db.lookup(name)
}

// lookup is Table without the lock, for internal cross-calls.
func (db *DB) lookup(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	return t, nil
}

// Tables lists table names.
func (db *DB) Tables() []string {
	db.lockWrite()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.name)
	}
	return out
}

// DropTable removes a table, releasing index resources. A drop cannot be
// undone in memory (the index's ORAM is gone), so under a journal the
// drop record commits durably *before* the in-memory removal — which
// cannot fail — keeping log and memory in lockstep.
func (db *DB) DropTable(name string) error {
	db.lockWrite()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("core: no table %q", name)
	}
	if db.wal != nil && !db.recovering {
		mark := db.wal.Staged()
		if err := db.wal.AppendDrop(t.name); err != nil {
			db.wal.Rewind(mark)
			return err
		}
		if !db.inTx {
			if err := db.wal.Commit(); err != nil {
				db.wal.Rewind(mark)
				return fmt.Errorf("core: journal commit failed, table kept: %w", err)
			}
			db.maybeCheckpointLocked()
		}
	}
	return db.dropTableBody(t.name)
}

// dropTableBody removes the table from memory; it cannot fail on an
// existing table.
func (db *DB) dropTableBody(name string) error {
	lname := strings.ToLower(name)
	t, ok := db.tables[lname]
	if !ok {
		return fmt.Errorf("core: no table %q", name)
	}
	if t.index != nil {
		t.index.Close()
	}
	delete(db.tables, lname)
	db.publishCatalog()
	return nil
}

// Insert adds rows to a table, writing to every storage representation it
// keeps (§3.3: "Using both storage methods ... incurring the cost of both
// for insertions").
func (db *DB) Insert(name string, rows ...table.Row) error {
	db.lockWrite()
	defer db.mu.Unlock()
	return db.insertRows(name, rows)
}

// insertRows is Insert without the lock, for internal cross-calls (the
// plan interpreter runs under the database mutex already).
func (db *DB) insertRows(name string, rows []table.Row) error {
	wm, um := db.mutationMarks()
	return db.endMutation(db.insertRowsBody(name, rows), wm, um)
}

// insertRowsBody applies the inserts, journaling each row only after it
// lands: a pass that fails midway leaves nothing staged for the rows it
// never wrote. The undo record is taken *before* each apply (removal
// tolerates absence), so a failed apply still unwinds cleanly.
func (db *DB) insertRowsBody(name string, rows []table.Row) error {
	t, err := db.lookup(name)
	if err != nil {
		return err
	}
	track := db.trackingMutations()
	for _, r := range rows {
		if err := t.schema.ValidateRow(r); err != nil {
			return err
		}
		if track {
			db.undo = append(db.undo, undoRec{op: undoInsert, table: t.name, post: []table.Row{r.Clone()}})
		}
		if err := db.applyInsert(t, r); err != nil {
			return err
		}
		if err := db.logMutation(wal.OpInsert, t, r); err != nil {
			return err
		}
	}
	return nil
}

// applyInsert writes one row into every representation the table keeps.
func (db *DB) applyInsert(t *Table, r table.Row) error {
	if t.flat != nil {
		if err := db.insertFlat(t, r); err != nil {
			return err
		}
	}
	if t.index != nil {
		if err := t.index.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// collectMatching reads the pre-images of rows matching full, for
// write-ahead logging. One read pass over the table's cheapest
// representation.
func (db *DB) collectMatching(t *Table, full table.Pred) ([]table.Row, error) {
	var out []table.Row
	if t.flat != nil {
		err := t.flat.Scan(func(_ int, r table.Row, used bool) error {
			if used && full(r) {
				out = append(out, r.Clone())
			}
			return nil
		})
		return out, err
	}
	err := t.index.ScanRaw(func(r table.Row) error {
		if full(r) {
			out = append(out, r.Clone())
		}
		return nil
	})
	return out, err
}

func (db *DB) insertFlat(t *Table, r table.Row) error {
	insert := t.flat.InsertFast
	if t.oblivIn {
		insert = t.flat.Insert
	}
	err := insert(r)
	if err == nil {
		return nil
	}
	if !strings.Contains(err.Error(), "is full") {
		return err
	}
	if t.flat.NumRows() < t.flat.Capacity() {
		// Deletions opened holes before the append cursor: the table
		// reports full to the fast path but has free slots. Reuse them
		// with the scanning insert instead of growing without bound on
		// insert/delete churn.
		return t.flat.Insert(r)
	}
	// Grow by copying to a larger table (§3: capacity "can be increased
	// later by copying to a new, larger table"). The growth is public —
	// table sizes always are.
	bigger, gerr := t.flat.Expand(t.name+".flat", 2*t.flat.Capacity())
	if gerr != nil {
		return gerr
	}
	t.flat = bigger
	if t.oblivIn {
		return t.flat.Insert(r)
	}
	return t.flat.InsertFast(r)
}

// BulkLoad fills an empty table with rows: constant-time appends into the
// flat representation and a bottom-up build of the index. Used for
// initial loads, where only the row count leaks.
func (db *DB) BulkLoad(name string, rows []table.Row) error {
	db.lockWrite()
	defer db.mu.Unlock()
	return db.bulkLoad(name, rows)
}

// bulkLoad is BulkLoad without the lock, for internal cross-calls.
func (db *DB) bulkLoad(name string, rows []table.Row) error {
	wm, um := db.mutationMarks()
	return db.endMutation(db.bulkLoadBody(name, rows), wm, um)
}

func (db *DB) bulkLoadBody(name string, rows []table.Row) error {
	t, err := db.lookup(name)
	if err != nil {
		return err
	}
	if t.NumRows() != 0 {
		return fmt.Errorf("core: BulkLoad requires an empty table, %q has %d rows", name, t.NumRows())
	}
	track := db.trackingMutations()
	if track {
		pre := make([]table.Row, len(rows))
		for i, r := range rows {
			pre[i] = r.Clone()
		}
		// Recorded before the load so a store fault midway through it
		// unwinds the rows that did land (removal tolerates the rest).
		db.undo = append(db.undo, undoRec{op: undoInsert, table: t.name, post: pre})
	}
	if t.flat != nil {
		for t.flat.Capacity() < len(rows) {
			bigger, err := t.flat.Expand(t.name+".flat", 2*t.flat.Capacity())
			if err != nil {
				return err
			}
			t.flat = bigger
		}
		for _, r := range rows {
			if err := t.flat.InsertFast(r); err != nil {
				return err
			}
		}
	}
	if t.index != nil {
		if err := t.index.BulkLoad(rows); err != nil {
			return err
		}
	}
	if track {
		for _, r := range rows {
			if err := db.logMutation(wal.OpInsert, t, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes the rows matching pred, optionally narrowed by a key
// range on the indexed column. It returns the count removed — already
// public as the change in table size.
func (db *DB) Delete(name string, pred table.Pred, key *KeyRange) (int, error) {
	db.lockWrite()
	defer db.mu.Unlock()
	return db.deleteRows(name, pred, key)
}

// deleteRows is Delete without the lock, for internal cross-calls.
func (db *DB) deleteRows(name string, pred table.Pred, key *KeyRange) (int, error) {
	wm, um := db.mutationMarks()
	n, err := db.deleteRowsBody(name, pred, key)
	if e := db.endMutation(err, wm, um); e != nil {
		return 0, e
	}
	return n, nil
}

// deleteRowsBody runs the delete pass, journaling the pre-images only
// after every representation succeeded — the seed journaled them first,
// so a pass failing midway left the log describing deletions that never
// happened.
func (db *DB) deleteRowsBody(name string, pred table.Pred, key *KeyRange) (int, error) {
	t, err := db.lookup(name)
	if err != nil {
		return 0, err
	}
	if pred == nil {
		pred = table.All
	}
	full := combinePred(t, pred, key)

	track := db.trackingMutations()
	var pre []table.Row
	if track {
		if pre, err = db.collectMatching(t, full); err != nil {
			return 0, err
		}
		// The undo record must exist BEFORE the apply pass: a store fault
		// midway through it leaves some rows deleted, and only a
		// pre-recorded undo can put them back (its replay tolerates rows
		// the pass never removed).
		db.undo = append(db.undo, undoRec{op: undoDelete, table: t.name, pre: pre})
	}

	// Indexed representation: find victim keys (by range when given,
	// otherwise by a linear raw scan), then run padded deletes.
	var victims []int64
	if t.index != nil {
		if key != nil {
			_, err = t.index.RangeScan(key.Lo, key.Hi, func(r table.Row) error {
				if pred(r) {
					victims = append(victims, r[t.keyCol].AsInt())
				}
				return nil
			})
		} else {
			err = t.index.ScanRaw(func(r table.Row) error {
				if full(r) {
					victims = append(victims, r[t.keyCol].AsInt())
				}
				return nil
			})
		}
		if err != nil {
			return 0, err
		}
	}

	n := 0
	if t.flat != nil {
		if n, err = t.flat.Delete(full); err != nil {
			return n, err
		}
	}
	if t.index != nil {
		deleted := 0
		for _, k := range victims {
			ok, err := t.index.Delete(k)
			if err != nil {
				return deleted, err
			}
			if ok {
				deleted++
			}
		}
		if t.flat == nil {
			n = deleted
		}
	}
	if track {
		for _, r := range pre {
			if err := db.logMutation(wal.OpDelete, t, r); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

// Update rewrites rows matching pred with upd, optionally narrowed by a
// key range. Key-column changes are handled as delete+insert on indexes.
func (db *DB) Update(name string, pred table.Pred, upd table.Updater, key *KeyRange) (int, error) {
	db.lockWrite()
	defer db.mu.Unlock()
	return db.updateRows(name, pred, upd, key)
}

// updateRows is Update without the lock, for internal cross-calls.
func (db *DB) updateRows(name string, pred table.Pred, upd table.Updater, key *KeyRange) (int, error) {
	wm, um := db.mutationMarks()
	n, err := db.updateRowsBody(name, pred, upd, key)
	if e := db.endMutation(err, wm, um); e != nil {
		return 0, e
	}
	return n, nil
}

// updateRowsBody runs the update pass. Under tracking, every post-image
// is computed and validated up front — before anything applies — so a
// row the updater would break fails the whole statement cleanly instead
// of leaving half the pass applied; the journal records are staged only
// after the pass succeeds.
func (db *DB) updateRowsBody(name string, pred table.Pred, upd table.Updater, key *KeyRange) (int, error) {
	t, err := db.lookup(name)
	if err != nil {
		return 0, err
	}
	if pred == nil {
		pred = table.All
	}
	full := combinePred(t, pred, key)

	track := db.trackingMutations()
	var pre, post []table.Row
	if track {
		if pre, err = db.collectMatching(t, full); err != nil {
			return 0, err
		}
		post = make([]table.Row, len(pre))
		for i, r := range pre {
			p := upd(r.Clone())
			if err := t.schema.ValidateRow(p); err != nil {
				return 0, err
			}
			post[i] = p
		}
		// Record the undo before anything applies (see deleteRowsBody):
		// a fault mid-pass leaves a mix of pre- and post-image rows, and
		// the two-phase undo replay restores the pre multiset exactly.
		db.undo = append(db.undo, undoRec{op: undoUpdate, table: t.name, pre: pre, post: post})
	}

	var before []table.Row
	if t.index != nil {
		collect := func(r table.Row) error {
			if full(r) {
				before = append(before, r.Clone())
			}
			return nil
		}
		if key != nil {
			_, err = t.index.RangeScan(key.Lo, key.Hi, func(r table.Row) error {
				if pred(r) {
					before = append(before, r.Clone())
				}
				return nil
			})
		} else {
			err = t.index.ScanRaw(collect)
		}
		if err != nil {
			return 0, err
		}
	}

	n := 0
	if t.flat != nil {
		if n, err = t.flat.Update(full, upd); err != nil {
			return n, err
		}
	}
	if t.index != nil {
		for _, old := range before {
			newRow := upd(old.Clone())
			if err := t.schema.ValidateRow(newRow); err != nil {
				return n, err
			}
			if _, err := t.index.Delete(old[t.keyCol].AsInt()); err != nil {
				return n, err
			}
			if err := t.index.Insert(newRow); err != nil {
				return n, err
			}
		}
		if t.flat == nil {
			n = len(before)
		}
	}
	if track {
		for i := range pre {
			if err := db.logMutation(wal.OpDelete, t, pre[i]); err != nil {
				return 0, err
			}
			if err := db.logMutation(wal.OpUpdate, t, post[i]); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

// KeyRange is an inclusive range on a table's indexed column.
type KeyRange struct {
	Lo, Hi int64
}

// Point returns a single-key range.
func Point(k int64) *KeyRange { return &KeyRange{Lo: k, Hi: k} }

// combinePred folds the key range into the predicate for representations
// that scan.
func combinePred(t *Table, pred table.Pred, key *KeyRange) table.Pred {
	if key == nil {
		return pred
	}
	kc := t.keyCol
	if kc < 0 {
		// Flat-only table: the "key range" narrows on the named column of
		// the schema only when an index exists; without one callers fold
		// ranges into pred themselves.
		return pred
	}
	return func(r table.Row) bool {
		k := r[kc].AsInt()
		return k >= key.Lo && k <= key.Hi && pred(r)
	}
}

// rowsPerBlockFor resolves the engine's packing factor for a schema:
// the configured knob, or the ~4 KiB-per-block default.
func (db *DB) rowsPerBlockFor(s *table.Schema) int {
	if db.cfg.RowsPerBlock > 0 {
		return db.cfg.RowsPerBlock
	}
	return storage.DefaultRowsPerBlock(s)
}

// tmpName generates a unique name for intermediate tables. The counter
// is atomic so concurrent read slots never collide; trace comparisons
// across interleavings normalize the digits away
// (trace.EventMultisetFingerprint).
func (db *DB) tmpName(op string) string {
	return fmt.Sprintf("tmp%d.%s", db.tmpSeq.Add(1), op)
}
