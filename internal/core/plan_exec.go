package core

import (
	"fmt"

	"oblidb/internal/exec"
	"oblidb/internal/plan"
	"oblidb/internal/planner"
	"oblidb/internal/table"
)

// This file is the engine's plan interpreter: it executes the physical
// plan IR of internal/plan by wrapping the existing oblivious operators.
// The interpreter holds the database mutex for the whole statement (like
// every exported entry point) and makes no data-dependent decisions of
// its own — each node maps onto exactly the operator invocation the old
// per-statement entry points performed, so the refactor moves dispatch,
// not leakage.

// TableMeta implements plan.Catalog with the engine's public metadata.
// It reads catalog metadata only, so it takes the shared lock: plan
// compilation for one slot must not stall the read slots of the same
// epoch (an exclusive acquisition would park every later shared one
// behind it).
func (db *DB) TableMeta(name string) (plan.TableMeta, bool) {
	db.lockShared()
	defer db.mu.RUnlock()
	return db.tableMeta(name)
}

// tableMeta is TableMeta without the lock.
func (db *DB) tableMeta(name string) (plan.TableMeta, bool) {
	t, err := db.lookup(name)
	if err != nil {
		return plan.TableMeta{}, false
	}
	return db.metaFor(t), true
}

// metaFor builds the public metadata of a table handle (which may be an
// unregistered intermediate).
func (db *DB) metaFor(t *Table) plan.TableMeta {
	m := plan.TableMeta{
		RecordSize: t.schema.RecordSize(),
		NumColumns: t.schema.NumColumns(),
	}
	if t.keyCol >= 0 {
		m.KeyColumn = t.schema.Col(t.keyCol).Name
	}
	if t.index != nil {
		m.HasIndex = true
		m.IndexHeight = t.index.Height()
		m.IndexAccessesPerOp = t.index.AccessesPerOp()
		m.IndexRowsPerBlock = t.index.RowsPerBlock()
	}
	if t.flat != nil {
		m.HasFlat = true
		m.Blocks = t.flat.NumBlocks()
		m.Rows = t.flat.Capacity()
		m.RowsPerBlock = t.flat.RowsPerBlock()
	} else {
		// Index-only tables materialize scans through db.materialize,
		// which packs the intermediate at the engine's geometry — report
		// that geometry so plan costs match what executes.
		r := db.rowsPerBlockFor(t.schema)
		rows := t.index.NumRows()
		m.Blocks = (rows + r - 1) / r
		if m.Blocks < 1 {
			m.Blocks = 1
		}
		m.Rows = m.Blocks * r
		m.RowsPerBlock = r
	}
	return m
}

// lockedCatalog adapts the (already locked) database for the optimizer
// pass, which runs under the database mutex.
type lockedCatalog struct{ db *DB }

func (c lockedCatalog) TableMeta(name string) (plan.TableMeta, bool) {
	return c.db.tableMeta(name)
}

// ExplainPlan runs the optimizer pass over a compiled plan — every
// node gets the algorithm, parallelism, and padded cost estimate the
// planner derives from public sizes alone — and renders the annotated
// tree. Annotation and rendering both happen under the database mutex:
// compiled plans are shared across executions (and across concurrent
// EXPLAINs of one shape), so the Choice fields must never be read while
// another annotation writes them. The interpreter's runtime decisions
// use the same choosers with the stats scan's exact |R| where one runs.
func (db *DB) ExplainPlan(root plan.Node) []string {
	db.lockWrite()
	defer db.mu.Unlock()
	workers := len(db.workers)
	if workers == 0 {
		workers = 1
	}
	planner.Annotate(root, lockedCatalog{db}, db.enc, db.cfg.Planner, workers)
	return plan.Explain(root)
}

// ExecutePlan runs a compiled plan with the given binder supplying this
// execution's argument values. Deferred evaluation errors surface after
// the operators complete — they must run their full padded access
// sequences regardless.
//
// Read-only plans (plan.ReadOnly) run under the shared side of the
// database lock on a pooled read-slot context, so the server's epoch
// workers execute them concurrently; everything else — DML, DDL,
// transactions — takes the exclusive side as before.
func (db *DB) ExecutePlan(root plan.Node, b plan.Binder) (*Result, error) {
	var ec *execCtx
	var release func()
	if plan.ReadOnly(root) {
		ec, release = db.beginRead()
	} else {
		db.lockWrite()
		ec, release = db.serialCtx, db.mu.Unlock
	}
	defer release()
	if db.broken != nil {
		return nil, db.broken
	}
	res, err := db.runPlan(ec, root, b)
	if err != nil {
		return nil, err
	}
	if err := b.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// runPlan executes a statement-level plan node.
func (db *DB) runPlan(ec *execCtx, n plan.Node, b plan.Binder) (*Result, error) {
	switch x := n.(type) {
	case *plan.Collect:
		return db.runCollect(ec, x, b)
	case *plan.Aggregate:
		t, key, cond, names, err := db.planSource(ec, x.Input, b)
		if err != nil {
			return nil, err
		}
		pred, err := b.Pred(cond, t.schema, names)
		if err != nil {
			return nil, err
		}
		specs := make([]AggregateSpec, len(x.Specs))
		outNames := make([]string, len(x.Specs))
		for i, s := range x.Specs {
			specs[i] = AggregateSpec{Kind: s.Kind, Column: planAggColumn(t.schema, s.Column, names)}
			outNames[i] = s.Name
		}
		res, err := db.aggregateTable(ec, t, pred, specs, key)
		if err != nil {
			return nil, err
		}
		res.Cols = outNames
		return res, nil
	case *plan.Insert:
		rows := make([]table.Row, len(x.Rows))
		for i, exprs := range x.Rows {
			row, err := b.RowValues(exprs)
			if err != nil {
				return nil, err
			}
			rows[i] = row
		}
		if err := db.insertRows(x.Table, rows); err != nil {
			return nil, err
		}
		return affectedResult(len(rows)), nil
	case *plan.Update:
		t, err := db.lookup(x.Table)
		if err != nil {
			return nil, err
		}
		pred, err := b.Pred(x.Cond, t.schema, nil)
		if err != nil {
			return nil, err
		}
		upd, err := b.Updater(x.Sets, t.schema)
		if err != nil {
			return nil, err
		}
		count, err := db.updateRows(x.Table, pred, upd, engineRange(x.Key))
		if err != nil {
			return nil, err
		}
		return affectedResult(count), nil
	case *plan.Delete:
		t, err := db.lookup(x.Table)
		if err != nil {
			return nil, err
		}
		pred, err := b.Pred(x.Cond, t.schema, nil)
		if err != nil {
			return nil, err
		}
		count, err := db.deleteRows(x.Table, pred, engineRange(x.Key))
		if err != nil {
			return nil, err
		}
		return affectedResult(count), nil
	case *plan.Tx:
		// BEGIN/COMMIT/ROLLBACK compile to a plan node so EXPLAIN and the
		// plan cache treat them uniformly, but they carry session state the
		// engine does not hold — a transaction-aware surface (the server's
		// sessions, the driver, oblidb.DB.Begin) must route them.
		return nil, fmt.Errorf("core: %s must run through a transaction-aware session", x.Kind)
	}
	return nil, fmt.Errorf("core: cannot execute plan node %T as a statement", n)
}

// PlanBinding pairs a compiled plan with the binder holding one
// execution's argument values.
type PlanBinding struct {
	Root   plan.Node
	Binder plan.Binder
}

// ExecutePlanTx executes a transaction's statements as one atomic batch
// under a single hold of the database mutex: all succeed and their
// journal records commit durably together, or any failure rolls every
// in-memory change back and discards the staged records. The engine is
// single-writer, so atomicity needs no cross-statement locking — only
// the deferred journal commit and the undo log (see wal.go).
func (db *DB) ExecutePlanTx(items []PlanBinding) ([]*Result, error) {
	db.lockWrite()
	defer db.mu.Unlock()
	if db.broken != nil {
		return nil, db.broken
	}
	walMark, undoMark := db.mutationMarks()
	db.inTx = true
	results := make([]*Result, 0, len(items))
	var err error
	for _, it := range items {
		var res *Result
		if res, err = db.runPlan(db.serialCtx, it.Root, it.Binder); err == nil {
			err = it.Binder.Err()
		}
		if err != nil {
			break
		}
		results = append(results, res)
	}
	db.inTx = false
	if err != nil {
		if rerr := db.rollbackTo(walMark, undoMark); rerr != nil {
			return nil, db.latchBroken(err, rerr)
		}
		return nil, err
	}
	if err := db.commitLocked(walMark, undoMark); err != nil {
		return nil, err
	}
	return results, nil
}

// runCollect materializes the subtree and decrypts it into a Result,
// applying the trailing projection (a trace-neutral in-enclave map).
func (db *DB) runCollect(ec *execCtx, c *plan.Collect, b plan.Binder) (*Result, error) {
	inner := c.Input
	var items []plan.ProjItem
	if pr, ok := inner.(*plan.Project); ok {
		items = pr.Items
		inner = pr.Input
	}
	t, names, err := db.planTable(ec, inner, b)
	if err != nil {
		return nil, err
	}
	// Surface predicate evaluation errors before handing rows back, as
	// the per-statement entry points did.
	if err := b.Err(); err != nil {
		return nil, err
	}
	raw, err := db.collect(ec, t)
	if err != nil {
		return nil, err
	}
	if items == nil {
		return raw, nil
	}
	mapper, err := b.Project(items, raw.Cols, names)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: make([]string, len(items))}
	for i, it := range items {
		out.Cols[i] = it.Name
	}
	for _, r := range raw.Rows {
		row, err := mapper(r)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// planTable materializes a table-producing plan node into an
// intermediate table, returning the join naming context its rows carry
// (nil outside joins).
func (db *DB) planTable(ec *execCtx, n plan.Node, b plan.Binder) (*Table, *plan.JoinNames, error) {
	switch x := n.(type) {
	case *plan.Filter:
		t, key, cond, names, err := db.planSource(ec, x, b)
		if err != nil {
			return nil, nil, err
		}
		pred, err := b.Pred(cond, t.schema, names)
		if err != nil {
			return nil, nil, err
		}
		out, err := db.selectTable(ec, t, pred, SelectOptions{KeyRange: key, Force: x.Force})
		if err != nil {
			return nil, nil, err
		}
		return out, names, nil
	case *plan.Join:
		return db.planJoin(ec, x, b)
	case *plan.GroupBy:
		t, key, cond, names, err := db.planSource(ec, x.Input, b)
		if err != nil {
			return nil, nil, err
		}
		pred, err := b.Pred(cond, t.schema, names)
		if err != nil {
			return nil, nil, err
		}
		groupKey, err := b.GroupKey(x.Key, t.schema, names)
		if err != nil {
			return nil, nil, err
		}
		specs := make([]AggregateSpec, len(x.Specs))
		for i, s := range x.Specs {
			specs[i] = AggregateSpec{Kind: s.Kind, Column: planAggColumn(t.schema, s.Column, names)}
		}
		out, err := db.groupAggregateTable(ec, t, pred, groupKey, specs, key)
		if err != nil {
			return nil, nil, err
		}
		// The grouped output has its own [group, aggs...] schema; join
		// naming does not survive it.
		return out, nil, nil
	case *plan.Sort:
		return db.planSort(ec, x, b)
	case *plan.Limit:
		t, names, err := db.planTable(ec, x.Input, b)
		if err != nil {
			return nil, nil, err
		}
		in, _, release, err := db.inputFor(ec, t, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		defer release()
		out, err := exec.Limit(ec.enc, in, x.N, db.tmpName("limit"))
		if err != nil {
			return nil, nil, err
		}
		db.pickLimit()
		return db.wrapTemp(out), names, nil
	case *plan.Scan, *plan.IndexScan:
		// The compiler wraps leaves in Filter; a bare leaf still
		// materializes through an all-rows oblivious select (the engine
		// never hands out raw storage).
		t, key, _, _, err := db.planSource(ec, n, b)
		if err != nil {
			return nil, nil, err
		}
		out, err := db.selectTable(ec, t, table.All, SelectOptions{KeyRange: key})
		if err != nil {
			return nil, nil, err
		}
		return out, nil, nil
	}
	return nil, nil, fmt.Errorf("core: unexpected plan node %T in a table position", n)
}

// planSource resolves a node to (table, key range, pending filter
// condition, join names) without materializing the filter, so callers
// fuse the predicate into their own operator pass — the aggregate's
// fused scan, the sort's copy pass, the select's chosen algorithm.
func (db *DB) planSource(ec *execCtx, n plan.Node, b plan.Binder) (*Table, *KeyRange, plan.Expr, *plan.JoinNames, error) {
	switch x := n.(type) {
	case *plan.Scan:
		t, err := ec.lookup(x.Table)
		return t, nil, nil, nil, err
	case *plan.IndexScan:
		t, err := ec.lookup(x.Table)
		return t, &KeyRange{Lo: x.Range.Lo, Hi: x.Range.Hi}, nil, nil, err
	case *plan.Filter:
		switch x.Input.(type) {
		case *plan.Scan, *plan.IndexScan:
			t, key, _, _, err := db.planSource(ec, x.Input, b)
			return t, key, x.Cond, nil, err
		}
		t, names, err := db.planTable(ec, x.Input, b)
		return t, nil, x.Cond, names, err
	default:
		t, names, err := db.planTable(ec, n, b)
		return t, nil, nil, names, err
	}
}

// planJoin executes a Join node: side filters (the children's
// conditions) fuse into the join's oblivious pre-filter passes.
func (db *DB) planJoin(ec *execCtx, x *plan.Join, b plan.Binder) (*Table, *plan.JoinNames, error) {
	lt, err := ec.lookup(x.LeftTable)
	if err != nil {
		return nil, nil, err
	}
	rt, err := ec.lookup(x.RightTable)
	if err != nil {
		return nil, nil, err
	}
	sideCond := func(n plan.Node) plan.Expr {
		if f, ok := n.(*plan.Filter); ok {
			return f.Cond
		}
		return nil
	}
	var leftPred, rightPred table.Pred
	if cond := sideCond(x.Left); cond != nil {
		if leftPred, err = b.Pred(cond, lt.schema, nil); err != nil {
			return nil, nil, err
		}
	}
	if cond := sideCond(x.Right); cond != nil {
		if rightPred, err = b.Pred(cond, rt.schema, nil); err != nil {
			return nil, nil, err
		}
	}
	joined, err := db.joinTable(ec, x.LeftTable, x.RightTable, x.LeftCol, x.RightCol, JoinOptions{
		FilterLeft:  leftPred,
		FilterRight: rightPred,
		Force:       x.Force,
	})
	if err != nil {
		return nil, nil, err
	}
	names := &plan.JoinNames{Left: x.LeftTable, Right: x.RightTable, RightStart: lt.schema.NumColumns()}
	return joined, names, nil
}

// planSort executes a Sort node: the input filter fuses into OrderBy's
// copy pass (no stats scan, no |R|-sized intermediate — the trace
// depends only on the input capacity), then the bitonic network orders
// the padded table dummy-last.
func (db *DB) planSort(ec *execCtx, x *plan.Sort, b plan.Binder) (*Table, *plan.JoinNames, error) {
	t, key, cond, names, err := db.planSource(ec, x.Input, b)
	if err != nil {
		return nil, nil, err
	}
	pred, err := b.Pred(cond, t.schema, names)
	if err != nil {
		return nil, nil, err
	}
	col := -1
	if x.Key != nil {
		if col, err = b.Column(x.Key, t.schema, names); err != nil {
			return nil, nil, err
		}
	}
	in, epred, release, err := db.inputFor(ec, t, key, pred)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	pred = epred
	out, err := exec.OrderBy(ec.enc, in, pred, col, x.Desc, db.tmpName("sort"))
	if err != nil {
		return nil, nil, err
	}
	db.pickSort()
	return db.wrapTemp(out), names, nil
}

// planAggColumn resolves an aggregate's column for rows that come from
// a join (names != nil): right-side duplicates carry the r_ prefix in
// the joined schema, so a bare name that only resolves prefixed is
// rewritten. Plain tables keep strict resolution — a missing column
// stays an error even if an unrelated r_-named column exists.
func planAggColumn(s *table.Schema, col string, names *plan.JoinNames) string {
	if names == nil || col == "" {
		return col
	}
	if s.ColIndex(col) < 0 && s.ColIndex("r_"+col) >= 0 {
		return "r_" + col
	}
	return col
}

// engineRange converts a plan key range back to the engine's.
func engineRange(k *plan.KeyRange) *KeyRange {
	if k == nil {
		return nil
	}
	return &KeyRange{Lo: k.Lo, Hi: k.Hi}
}

// affectedResult is the one-row result DML returns.
func affectedResult(n int) *Result {
	return &Result{Cols: []string{"affected"}, Rows: []table.Row{{table.Int(int64(n))}}, Affected: true}
}
