package core

import (
	"fmt"
	"testing"

	"oblidb/internal/exec"
	"oblidb/internal/table"
)

func usersSchema() *table.Schema {
	return table.MustSchema(
		table.Column{Name: "uid", Kind: table.KindInt},
		table.Column{Name: "name", Kind: table.KindString, Width: 16},
		table.Column{Name: "age", Kind: table.KindInt},
	)
}

func user(uid int64, name string, age int64) table.Row {
	return table.Row{table.Int(uid), table.Str(name), table.Int(age)}
}

// seedUsers creates a users table of the given kind with n rows.
func seedUsers(t *testing.T, db *DB, kind StorageKind, n int) *Table {
	t.Helper()
	tab, err := db.CreateTable("users", usersSchema(), TableOptions{
		Kind: kind, KeyColumn: "uid", Capacity: n + 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Insert("users", user(int64(i), fmt.Sprintf("u%d", i), int64(20+i%50))); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

var allKinds = []StorageKind{KindFlat, KindIndexed, KindBoth}

func TestCreateTableValidation(t *testing.T) {
	db := MustOpen(Config{})
	if _, err := db.CreateTable("t", usersSchema(), TableOptions{Kind: KindIndexed}); err == nil {
		t.Error("indexed table without key column accepted")
	}
	if _, err := db.CreateTable("t", usersSchema(), TableOptions{Kind: KindIndexed, KeyColumn: "nope"}); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := db.CreateTable("t", usersSchema(), TableOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", usersSchema(), TableOptions{}); err == nil {
		t.Error("duplicate (case-insensitive) table accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
}

func TestInsertSelectAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := MustOpen(Config{})
			seedUsers(t, db, kind, 30)
			res, err := db.Select("users", func(r table.Row) bool { return r[2].AsInt() >= 40 }, SelectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for i := 0; i < 30; i++ {
				if 20+i%50 >= 40 {
					want++
				}
			}
			if len(res.Rows) != want {
				t.Fatalf("%s: %d rows, want %d", kind, len(res.Rows), want)
			}
		})
	}
}

func TestSelectWithKeyRangeUsesIndex(t *testing.T) {
	// Index-only tables have no flat fallback: keyed reads always route
	// through the ORAM index.
	db := MustOpen(Config{})
	seedUsers(t, db, KindIndexed, 50)
	res, err := db.Select("users", nil, SelectOptions{KeyRange: &KeyRange{Lo: 10, Hi: 19}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("indexed: range select returned %d rows, want 10", len(res.Rows))
	}
	if !db.LastPlan.UsedIndex {
		t.Fatal("indexed: planner did not use the index")
	}

	// A small KindBoth table is cheaper to scan flat than to pay the
	// ORAM's per-operation factor: the planner's costed choice falls back
	// to the flat representation, with the key range folded into the
	// predicate so the result is identical.
	db = MustOpen(Config{})
	seedUsers(t, db, KindBoth, 50)
	res, err = db.Select("users", nil, SelectOptions{KeyRange: &KeyRange{Lo: 10, Hi: 19}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("both: range select returned %d rows, want 10", len(res.Rows))
	}
	if db.LastPlan.UsedIndex {
		t.Fatal("both: small table should be served by the cheaper flat scan")
	}
}

func TestAccessMethodFlipsAtScale(t *testing.T) {
	// At one record per block a moderately sized table already costs more
	// to scan flat than to probe through the ORAM index, flipping the
	// planner's §5 access-method choice to the indexed path.
	db := MustOpen(Config{RowsPerBlock: 1})
	if _, err := db.CreateTable("users", usersSchema(), TableOptions{
		Kind: KindBoth, KeyColumn: "uid", Capacity: 4096,
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]table.Row, 600)
	for i := range rows {
		rows[i] = user(int64(i), fmt.Sprintf("u%d", i), int64(20+i%50))
	}
	if err := db.BulkLoad("users", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select("users", nil, SelectOptions{KeyRange: Point(123)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsString() != "u123" {
		t.Fatalf("point query returned %v", res.Rows)
	}
	if !db.LastPlan.UsedIndex {
		t.Fatal("large one-record-per-block table should flip to the index")
	}
}

func TestSelectPointQuery(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindBoth, 40)
	res, err := db.Select("users", nil, SelectOptions{KeyRange: Point(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsString() != "u7" {
		t.Fatalf("point query returned %v", res.Rows)
	}
}

func TestSelectProjection(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindFlat, 10)
	res, err := db.Select("users", nil, SelectOptions{Projection: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "name" || len(res.Rows[0]) != 1 {
		t.Fatalf("projection result: cols=%v", res.Cols)
	}
	if _, err := db.Select("users", nil, SelectOptions{Projection: []string{"ghost"}}); err == nil {
		t.Fatal("projection of unknown column accepted")
	}
}

func TestForceAlgorithm(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindFlat, 20)
	alg := exec.SelectHash
	_, err := db.Select("users", func(r table.Row) bool { return r[0].AsInt() < 5 }, SelectOptions{Force: &alg})
	if err != nil {
		t.Fatal(err)
	}
	if db.LastPlan.SelectAlg != exec.SelectHash {
		t.Fatalf("forced Hash, planner reports %s", db.LastPlan.SelectAlg)
	}
}

func TestAggregateFused(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindFlat, 25)
	res, err := db.Aggregate("users",
		func(r table.Row) bool { return r[0].AsInt() < 10 },
		[]AggregateSpec{{Kind: exec.AggCount}, {Kind: exec.AggSum, Column: "age"}, {Kind: exec.AggAvg, Column: "age"}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("COUNT = %v", res.Rows[0][0])
	}
	wantSum := 0.0
	for i := 0; i < 10; i++ {
		wantSum += float64(20 + i%50)
	}
	if res.Rows[0][1].AsFloat() != wantSum {
		t.Fatalf("SUM = %v, want %v", res.Rows[0][1], wantSum)
	}
	if res.Cols[0] != "COUNT(*)" || res.Cols[1] != "SUM(age)" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestAggregateOverKeyRange(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindBoth, 50)
	res, err := db.Aggregate("users", nil, []AggregateSpec{{Kind: exec.AggCount}}, &KeyRange{Lo: 0, Hi: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 25 {
		t.Fatalf("range COUNT = %v", res.Rows[0][0])
	}
}

func TestGroupAggregate(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindFlat, 30)
	res, err := db.GroupAggregate("users", nil,
		func(r table.Row) table.Value { return table.Int(r[0].AsInt() % 3) },
		[]AggregateSpec{{Kind: exec.AggCount}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d groups, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].AsInt() != 10 {
			t.Fatalf("group %v has count %v, want 10", r[0], r[1])
		}
	}
}

func TestJoinWithFiltersAndPlanner(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindFlat, 10)
	ordersSchema := table.MustSchema(
		table.Column{Name: "ouid", Kind: table.KindInt},
		table.Column{Name: "total", Kind: table.KindInt},
	)
	if _, err := db.CreateTable("orders", ordersSchema, TableOptions{Capacity: 32}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Insert("orders", table.Row{table.Int(int64(i % 10)), table.Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Join("users", "orders", "uid", "ouid", JoinOptions{
		FilterRight: func(r table.Row) bool { return r[1].AsInt() >= 100 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Orders with total>=100: i in 10..19 → 10 orders, all matching users.
	if len(res.Rows) != 10 {
		t.Fatalf("join returned %d rows, want 10", len(res.Rows))
	}
	// Joined schema: users cols + orders cols.
	if len(res.Cols) != 5 {
		t.Fatalf("joined cols = %v", res.Cols)
	}
}

func TestJoinForcedAlgorithms(t *testing.T) {
	for _, alg := range []exec.JoinAlgorithm{exec.JoinHash, exec.JoinOpaque, exec.JoinZeroOM} {
		db := MustOpen(Config{})
		seedUsers(t, db, KindFlat, 8)
		oSchema := table.MustSchema(table.Column{Name: "ouid", Kind: table.KindInt})
		if _, err := db.CreateTable("orders", oSchema, TableOptions{Capacity: 8}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			_ = db.Insert("orders", table.Row{table.Int(int64(i))})
		}
		a := alg
		res, err := db.Join("users", "orders", "uid", "ouid", JoinOptions{Force: &a})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Rows) != 6 {
			t.Fatalf("%s: %d rows, want 6", alg, len(res.Rows))
		}
	}
}

func TestUpdateAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := MustOpen(Config{})
			seedUsers(t, db, kind, 20)
			n, err := db.Update("users",
				func(r table.Row) bool { return r[0].AsInt() < 5 },
				func(r table.Row) table.Row { r[2] = table.Int(99); return r },
				nil)
			if err != nil {
				t.Fatal(err)
			}
			if n != 5 {
				t.Fatalf("updated %d, want 5", n)
			}
			res, err := db.Select("users", func(r table.Row) bool { return r[2].AsInt() == 99 }, SelectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 5 {
				t.Fatalf("%d rows updated in storage, want 5", len(res.Rows))
			}
		})
	}
}

func TestDeleteAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := MustOpen(Config{})
			tab := seedUsers(t, db, kind, 20)
			n, err := db.Delete("users", func(r table.Row) bool { return r[0].AsInt()%2 == 0 }, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n != 10 {
				t.Fatalf("deleted %d, want 10", n)
			}
			if tab.NumRows() != 10 {
				t.Fatalf("NumRows = %d, want 10", tab.NumRows())
			}
			res, _ := db.Select("users", nil, SelectOptions{})
			if len(res.Rows) != 10 {
				t.Fatalf("%d rows remain, want 10", len(res.Rows))
			}
		})
	}
}

func TestDeleteByKeyRange(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindBoth, 20)
	n, err := db.Delete("users", nil, &KeyRange{Lo: 5, Hi: 9})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("deleted %d, want 5", n)
	}
	res, _ := db.Select("users", nil, SelectOptions{})
	if len(res.Rows) != 15 {
		t.Fatalf("%d rows remain, want 15", len(res.Rows))
	}
}

func TestUpdateKeyColumnOnIndex(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindIndexed, 10)
	n, err := db.Update("users",
		func(r table.Row) bool { return r[0].AsInt() == 3 },
		func(r table.Row) table.Row { r[0] = table.Int(300); return r },
		nil)
	if err != nil || n != 1 {
		t.Fatalf("key update: n=%d err=%v", n, err)
	}
	res, err := db.Select("users", nil, SelectOptions{KeyRange: Point(300)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("moved key not found: %v", res.Rows)
	}
	res, _ = db.Select("users", nil, SelectOptions{KeyRange: Point(3)})
	if len(res.Rows) != 0 {
		t.Fatal("old key still present")
	}
}

func TestFlatAutoExpand(t *testing.T) {
	db := MustOpen(Config{})
	if _, err := db.CreateTable("small", usersSchema(), TableOptions{Capacity: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Insert("small", user(int64(i), "x", 1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	tab, _ := db.Table("small")
	if tab.NumRows() != 20 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestPaddingMode(t *testing.T) {
	db := MustOpen(Config{Padding: PaddingConfig{Enabled: true, PadRows: 16, PadGroups: 16}})
	seedUsers(t, db, KindFlat, 30)
	tab, _ := db.Table("users")
	tmp, err := db.SelectTable(tab, func(r table.Row) bool { return r[0].AsInt() < 7 }, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Output structure padded: 5 slots per position × PadRows positions,
	// rounded up to whole sealed blocks at the engine's packing factor.
	r := tmp.flat.RowsPerBlock()
	want := (16*5 + r - 1) / r * r
	if tmp.flat.Capacity() != want {
		t.Fatalf("padded select capacity %d, want %d", tmp.flat.Capacity(), want)
	}
	res, _ := db.Collect(tmp)
	if len(res.Rows) != 7 {
		t.Fatalf("padded select returned %d real rows, want 7", len(res.Rows))
	}
	// Group padding.
	g, err := db.GroupAggregateTable(tab, nil,
		func(r table.Row) table.Value { return table.Int(r[0].AsInt() % 4) },
		[]AggregateSpec{{Kind: exec.AggCount}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gr := g.flat.RowsPerBlock()
	gwant := (16 + gr - 1) / gr * gr
	if g.flat.Capacity() != gwant {
		t.Fatalf("padded groups capacity %d, want %d", g.flat.Capacity(), gwant)
	}
	// Exceeding the pad bound must fail loudly, not leak.
	if _, err := db.SelectTable(tab, nil, SelectOptions{}); err == nil {
		t.Fatal("select larger than pad bound accepted")
	}
}

func TestPaddingModeRequiresPadRows(t *testing.T) {
	if _, err := Open(Config{Padding: PaddingConfig{Enabled: true}}); err == nil {
		t.Fatal("padding mode without PadRows accepted")
	}
}

func TestDropTable(t *testing.T) {
	db := MustOpen(Config{})
	seedUsers(t, db, KindBoth, 5)
	if err := db.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("users"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if len(db.Tables()) != 0 {
		t.Fatal("table list not empty")
	}
}

func TestIndexOnlyCollectRejected(t *testing.T) {
	db := MustOpen(Config{})
	tab := seedUsers(t, db, KindIndexed, 5)
	if _, err := db.Collect(tab); err == nil {
		t.Fatal("collect of index-only table accepted")
	}
	// But selects work via the linear raw scan.
	res, err := db.Select("users", nil, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("raw-scan select returned %d rows", len(res.Rows))
	}
}
