package core

import (
	"fmt"
	"testing"

	"oblidb/internal/exec"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// These tests check the engine's end-to-end guarantee (Appendix A): for
// fixed public parameters — table sizes, output sizes, physical plan —
// the full untrusted trace of a query is identical whatever the data and
// predicate parameters. They drive whole queries, not single operators.

// fixedKey makes two databases byte-comparable: same key → same enclave
// PRNG stream → same hash salts and store layout.
var fixedKey = make([]byte, 32)

func tracedDB(t *testing.T, tr *trace.Tracer) *DB {
	t.Helper()
	db, err := Open(Config{Tracer: tr, Key: fixedKey})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// seedFlat loads n rows with val[i] into a flat table.
func seedFlat(t *testing.T, db *DB, vals []int64) {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindInt},
	)
	if _, err := db.CreateTable("t", s, TableOptions{Capacity: len(vals)}); err != nil {
		t.Fatal(err)
	}
	rows := make([]table.Row, len(vals))
	for i, v := range vals {
		rows[i] = table.Row{table.Int(int64(i)), table.Int(v)}
	}
	if err := db.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndSelectTraceOblivious(t *testing.T) {
	const n, k = 64, 16
	run := func(vals []int64, param int64) *trace.Tracer {
		tr := trace.New()
		db := tracedDB(t, tr)
		seedFlat(t, db, vals)
		tr.Reset()
		tab, _ := db.Table("t")
		if _, err := db.SelectTable(tab, func(r table.Row) bool { return r[1].AsInt() == param }, SelectOptions{}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// Same |T| and |R| and (scattered) shape, different data and params.
	valsA := make([]int64, n)
	valsB := make([]int64, n)
	for i := 0; i < k; i++ {
		valsA[i*4] = 7
		valsB[i*4+1] = 9
	}
	a := run(valsA, 7)
	b := run(valsB, 9)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("end-to-end select trace depends on data: %s", d)
	}
}

func TestEndToEndAggregateTraceOblivious(t *testing.T) {
	run := func(vals []int64, threshold int64) *trace.Tracer {
		tr := trace.New()
		db := tracedDB(t, tr)
		seedFlat(t, db, vals)
		tr.Reset()
		if _, err := db.Aggregate("t",
			func(r table.Row) bool { return r[1].AsInt() > threshold },
			[]AggregateSpec{{Kind: exec.AggSum, Column: "val"}}, nil); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run([]int64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	b := run([]int64{8, 8, 8, 8, 8, 8, 8, 8}, 0)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("aggregate trace depends on data: %s", d)
	}
}

func TestEndToEndJoinTraceOblivious(t *testing.T) {
	run := func(fkBase int64) *trace.Tracer {
		tr := trace.New()
		db := tracedDB(t, tr)
		s1 := table.MustSchema(table.Column{Name: "pk", Kind: table.KindInt})
		s2 := table.MustSchema(table.Column{Name: "fk", Kind: table.KindInt})
		if _, err := db.CreateTable("l", s1, TableOptions{Capacity: 16}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable("r", s2, TableOptions{Capacity: 24}); err != nil {
			t.Fatal(err)
		}
		lrows := make([]table.Row, 16)
		for i := range lrows {
			lrows[i] = table.Row{table.Int(int64(i))}
		}
		rrows := make([]table.Row, 24)
		for i := range rrows {
			rrows[i] = table.Row{table.Int(fkBase + int64(i%4))}
		}
		if err := db.BulkLoad("l", lrows); err != nil {
			t.Fatal(err)
		}
		if err := db.BulkLoad("r", rrows); err != nil {
			t.Fatal(err)
		}
		tr.Reset()
		alg := exec.JoinZeroOM // deterministic network, fully comparable
		if _, err := db.JoinTable("l", "r", "pk", "fk", JoinOptions{Force: &alg}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(0)    // every foreign row matches
	b := run(1000) // none match
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("join trace depends on match pattern: %s", d)
	}
}

func TestEndToEndMutationTraceOblivious(t *testing.T) {
	run := func(updParam, delParam int64) *trace.Tracer {
		tr := trace.New()
		db := tracedDB(t, tr)
		seedFlat(t, db, []int64{1, 2, 3, 4, 5, 6, 7, 8})
		tr.Reset()
		if _, err := db.Update("t",
			func(r table.Row) bool { return r[1].AsInt() == updParam },
			func(r table.Row) table.Row { r[1] = table.Int(100); return r }, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Delete("t", func(r table.Row) bool { return r[1].AsInt() == delParam }, nil); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(1, 8)
	b := run(5, 2)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("mutation trace depends on params: %s", d)
	}
}

func TestEndToEndPaddingHidesResultSize(t *testing.T) {
	// In padding mode, queries with different |R| (below the bound) must
	// be indistinguishable — that is the mode's whole point.
	run := func(vals []int64, param int64) *trace.Tracer {
		tr := trace.New()
		db, err := Open(Config{Tracer: tr, Key: fixedKey,
			Padding: PaddingConfig{Enabled: true, PadRows: 32, PadGroups: 8}})
		if err != nil {
			t.Fatal(err)
		}
		seedFlat(t, db, vals)
		tr.Reset()
		tab, _ := db.Table("t")
		if _, err := db.SelectTable(tab, func(r table.Row) bool { return r[1].AsInt() == param }, SelectOptions{}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	many := make([]int64, 64)
	few := make([]int64, 64)
	for i := 0; i < 30; i++ {
		many[i] = 1 // 30 matches
	}
	few[10] = 2 // 1 match
	a := run(many, 1)
	b := run(few, 2)
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("padding mode leaks result size: %s", d)
	}
}

func TestIndexedQueryAccessCountsUniform(t *testing.T) {
	// Indexed point queries go through the Ring ORAM, which batches
	// evictions: a call's physical access count varies with its POSITION
	// in the table's access sequence (public state) but must never vary
	// with the data. The pin: two same-shape tables — same capacity, row
	// count, and seed, different contents — cost exactly the same count
	// at every position, hit or miss, whatever the keys.
	run := func(base, stride int64, keys []int64) []uint64 {
		tr := trace.New()
		tr.EnableCounts()
		db, err := Open(Config{Tracer: tr, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		s := table.MustSchema(
			table.Column{Name: "id", Kind: table.KindInt},
			table.Column{Name: "val", Kind: table.KindInt},
		)
		if _, err := db.CreateTable("t", s, TableOptions{Kind: KindIndexed, KeyColumn: "id", Capacity: 256}); err != nil {
			t.Fatal(err)
		}
		rows := make([]table.Row, 200)
		for i := range rows {
			rows[i] = table.Row{table.Int(base + int64(i)*stride), table.Int(int64(i))}
		}
		if err := db.BulkLoad("t", rows); err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table("t")
		counts := make([]uint64, len(keys))
		for i, key := range keys {
			before := tr.TotalCount()
			if _, _, err := tab.Index().Lookup(key); err != nil {
				t.Fatal(err)
			}
			counts[i] = tr.TotalCount() - before
		}
		return counts
	}
	// Run a: dense keys, mostly hits. Run b: sparse keys, mostly misses.
	a := run(0, 1, []int64{0, 99, 199, -5, 10000})
	b := run(1000, 3, []int64{1000, 1033, 9999, 0, -77})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lookup %d cost %d accesses on run a, %d on run b", i, a[i], b[i])
		}
	}
}

func TestTamperedTableFailsQueries(t *testing.T) {
	// End-to-end integrity: an OS-level bit flip in any block surfaces as
	// an error on the next query, never as wrong results.
	db := MustOpen(Config{})
	seedFlat(t, db, []int64{1, 2, 3, 4})
	tab, _ := db.Table("t")
	raw := tab.Flat().Store().AdversaryRawBlock(0)
	raw[len(raw)-1] ^= 0x80
	tab.Flat().Store().AdversarySetRawBlock(0, raw)
	if _, err := db.Select("t", nil, SelectOptions{}); err == nil {
		t.Fatal("query over tampered table succeeded")
	}
}

func TestRollbackFailsQueries(t *testing.T) {
	db := MustOpen(Config{})
	seedFlat(t, db, []int64{1, 2, 3, 4})
	tab, _ := db.Table("t")
	st := tab.Flat().Store()
	old := st.AdversaryRawBlock(0)
	if _, err := db.Update("t", table.All, func(r table.Row) table.Row {
		r[1] = table.Int(9)
		return r
	}, nil); err != nil {
		t.Fatal(err)
	}
	st.AdversarySetRawBlock(0, old) // roll block 0 back to its pre-update state
	if _, err := db.Select("t", nil, SelectOptions{}); err == nil {
		t.Fatal("query over rolled-back table succeeded")
	}
}

func TestManyQueriesSameTraceFingerprint(t *testing.T) {
	// Repeating the identical query must give the identical trace (the
	// engine holds no cross-query state that would change access
	// patterns, §4: "stored rows do not persist inside the enclave
	// between queries").
	tr := trace.New()
	db := tracedDB(t, tr)
	seedFlat(t, db, []int64{5, 6, 7, 8, 9, 10, 11, 12})
	var prints []string
	for i := 0; i < 3; i++ {
		tr.Reset()
		tab, _ := db.Table("t")
		if _, err := db.SelectTable(tab, func(r table.Row) bool { return r[1].AsInt() >= 9 }, SelectOptions{}); err != nil {
			t.Fatal(err)
		}
		// Canonical: each run allocates fresh temp tables, whose region
		// ids differ; patterns must not.
		prints = append(prints, fmt.Sprintf("%x", tr.CanonicalFingerprint()))
	}
	if prints[0] != prints[1] || prints[1] != prints[2] {
		t.Fatalf("identical queries produced different traces: %v", prints)
	}
}
