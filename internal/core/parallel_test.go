package core

import (
	"fmt"
	"sort"
	"testing"

	"oblidb/internal/exec"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

// These tests cover the engine-level Parallelism option: identical
// results to the serial engine, and end-to-end obliviousness of the
// partitioned execution (parent trace plus per-worker trace multiset).

func seedBig(t *testing.T, db *DB, n int) {
	t.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 17)
	}
	seedFlat(t, db, vals)
}

func sortedIDs(res *Result) []int64 {
	out := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].AsInt()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestParallelEngineMatchesSerial(t *testing.T) {
	const n = 256
	serial := MustOpen(Config{})
	seedBig(t, serial, n)
	par := MustOpen(Config{Parallelism: 4})
	seedBig(t, par, n)
	if par.Parallelism() != 4 {
		t.Fatalf("Parallelism() = %d, want 4", par.Parallelism())
	}

	pred := func(r table.Row) bool { return r[1].AsInt() == 5 }
	for _, force := range []*exec.SelectAlgorithm{nil, algPtr(exec.SelectLarge), algPtr(exec.SelectHash), algPtr(exec.SelectSmall)} {
		name := "planner"
		if force != nil {
			name = force.String()
		}
		t.Run("select/"+name, func(t *testing.T) {
			a, err := serial.Select("t", pred, SelectOptions{Force: force})
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Select("t", pred, SelectOptions{Force: force})
			if err != nil {
				t.Fatal(err)
			}
			av, bv := sortedIDs(a), sortedIDs(b)
			if fmt.Sprint(av) != fmt.Sprint(bv) {
				t.Fatalf("parallel select differs: %v vs %v", bv, av)
			}
		})
	}

	t.Run("aggregate", func(t *testing.T) {
		specs := []AggregateSpec{{Kind: exec.AggCount}, {Kind: exec.AggSum, Column: "val"}, {Kind: exec.AggMax, Column: "val"}}
		a, err := serial.Aggregate("t", pred, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Aggregate("t", pred, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Rows[0] {
			if !a.Rows[0][i].Equal(b.Rows[0][i]) {
				t.Fatalf("aggregate %d: parallel %v, serial %v", i, b.Rows[0][i], a.Rows[0][i])
			}
		}
	})

	t.Run("group", func(t *testing.T) {
		groupBy := func(r table.Row) table.Value { return r[1] }
		specs := []AggregateSpec{{Kind: exec.AggCount}}
		a, err := serial.GroupAggregate("t", nil, groupBy, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.GroupAggregate("t", nil, groupBy, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("group counts differ: %d vs %d", len(b.Rows), len(a.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if !a.Rows[i][j].Equal(b.Rows[i][j]) {
					t.Fatalf("group row %d differs", i)
				}
			}
		}
	})
}

func algPtr(a exec.SelectAlgorithm) *exec.SelectAlgorithm { return &a }

func TestParallelJoinMatchesSerial(t *testing.T) {
	setup := func(cfg Config) *DB {
		db := MustOpen(cfg)
		s1 := table.MustSchema(table.Column{Name: "pk", Kind: table.KindInt})
		s2 := table.MustSchema(table.Column{Name: "fk", Kind: table.KindInt})
		if _, err := db.CreateTable("l", s1, TableOptions{Capacity: 32}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable("r", s2, TableOptions{Capacity: 256}); err != nil {
			t.Fatal(err)
		}
		lrows := make([]table.Row, 32)
		for i := range lrows {
			lrows[i] = table.Row{table.Int(int64(i))}
		}
		rrows := make([]table.Row, 256)
		for i := range rrows {
			rrows[i] = table.Row{table.Int(int64(i % 40))}
		}
		if err := db.BulkLoad("l", lrows); err != nil {
			t.Fatal(err)
		}
		if err := db.BulkLoad("r", rrows); err != nil {
			t.Fatal(err)
		}
		return db
	}
	alg := exec.JoinHash
	serial := setup(Config{})
	par := setup(Config{Parallelism: 4})
	a, err := serial.Join("l", "r", "pk", "fk", JoinOptions{Force: &alg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Join("l", "r", "pk", "fk", JoinOptions{Force: &alg})
	if err != nil {
		t.Fatal(err)
	}
	key := func(res *Result) []string {
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = fmt.Sprintf("%v|%v", r[0], r[1])
		}
		sort.Strings(out)
		return out
	}
	ak, bk := key(a), key(b)
	if fmt.Sprint(ak) != fmt.Sprint(bk) {
		t.Fatalf("parallel join differs:\n%v\nvs\n%v", bk, ak)
	}
}

// parallelTracedRun executes one select on a Parallelism-4 engine with
// per-worker tracers and reduces it to (parent canonical, worker
// multiset) fingerprints. rpb pins the packing factor: R = 1 keeps the
// 256-row table at 256 sealed blocks (the paper geometry), R > 1 runs
// the same check over block-aligned packed partitions.
func parallelTracedRun(t *testing.T, vals []int64, param int64, force *exec.SelectAlgorithm, rpb int) ([32]byte, [32]byte) {
	t.Helper()
	parent := trace.New()
	wts := make([]*trace.Tracer, 4)
	for i := range wts {
		wts[i] = trace.New()
	}
	db, err := Open(Config{Tracer: parent, Key: fixedKey, Parallelism: 4, WorkerTracers: wts, RowsPerBlock: rpb})
	if err != nil {
		t.Fatal(err)
	}
	seedFlat(t, db, vals)
	parent.Reset()
	tab, _ := db.Table("t")
	if _, err := db.SelectTable(tab, func(r table.Row) bool { return r[1].AsInt() == param }, SelectOptions{Force: force}); err != nil {
		t.Fatal(err)
	}
	events := 0
	for _, w := range wts {
		events += w.Len()
	}
	if events == 0 {
		t.Fatal("parallel path did not engage: no worker events")
	}
	return parent.CanonicalFingerprint(), trace.MultisetFingerprint(wts)
}

func TestEndToEndParallelSelectTraceOblivious(t *testing.T) {
	// 256 rows so the planner's partition rule actually engages; same
	// |T| and |R|, different data and parameters.
	const n, k = 256, 32
	valsA := make([]int64, n)
	valsB := make([]int64, n)
	for i := 0; i < k; i++ {
		valsA[i*5] = 7
		valsB[i*3+100] = 9
	}
	for _, force := range []*exec.SelectAlgorithm{nil, algPtr(exec.SelectHash), algPtr(exec.SelectLarge)} {
		name := "planner"
		if force != nil {
			name = force.String()
		}
		t.Run(name, func(t *testing.T) {
			pa, wa := parallelTracedRun(t, valsA, 7, force, 1)
			pb, wb := parallelTracedRun(t, valsB, 9, force, 1)
			if pa != pb {
				t.Fatal("parallel engine: parent trace depends on data")
			}
			if wa != wb {
				t.Fatal("parallel engine: worker trace multiset depends on data")
			}
		})
	}
}

func TestEndToEndParallelSelectTraceObliviousPacked(t *testing.T) {
	// The packed parallel path — block-aligned PartitionView reads,
	// RangeWriter sealed fills and RMW blocks — under the same
	// end-to-end check: at R = 4 a 2048-row table is 512 sealed blocks,
	// enough for the partition rule to engage all 4 workers.
	const n, k = 2048, 128
	valsA := make([]int64, n)
	valsB := make([]int64, n)
	for i := 0; i < k; i++ {
		valsA[i*5] = 7
		valsB[i*3+1000] = 9
	}
	for _, force := range []*exec.SelectAlgorithm{nil, algPtr(exec.SelectHash), algPtr(exec.SelectLarge)} {
		name := "planner"
		if force != nil {
			name = force.String()
		}
		t.Run(name, func(t *testing.T) {
			pa, wa := parallelTracedRun(t, valsA, 7, force, 4)
			pb, wb := parallelTracedRun(t, valsB, 9, force, 4)
			if pa != pb {
				t.Fatal("packed parallel engine: parent trace depends on data")
			}
			if wa != wb {
				t.Fatal("packed parallel engine: worker trace multiset depends on data")
			}
		})
	}
}

func TestEndToEndParallelAggregateTraceOblivious(t *testing.T) {
	run := func(vals []int64, threshold int64) ([32]byte, [32]byte) {
		parent := trace.New()
		wts := make([]*trace.Tracer, 4)
		for i := range wts {
			wts[i] = trace.New()
		}
		db, err := Open(Config{Tracer: parent, Key: fixedKey, Parallelism: 4, WorkerTracers: wts, RowsPerBlock: 1})
		if err != nil {
			t.Fatal(err)
		}
		seedFlat(t, db, vals)
		parent.Reset()
		if _, err := db.Aggregate("t",
			func(r table.Row) bool { return r[1].AsInt() > threshold },
			[]AggregateSpec{{Kind: exec.AggSum, Column: "val"}}, nil); err != nil {
			t.Fatal(err)
		}
		return parent.CanonicalFingerprint(), trace.MultisetFingerprint(wts)
	}
	many := make([]int64, 256)
	flat := make([]int64, 256)
	for i := range many {
		many[i] = int64(i)
		flat[i] = 1
	}
	pa, wa := run(many, 128)
	pb, wb := run(flat, 0)
	if pa != pb || wa != wb {
		t.Fatal("parallel aggregate trace depends on data")
	}
}

func TestParallelLargeSelect(t *testing.T) {
	// The Large regime (R ≈ N) exercises the concat combine path
	// end-to-end through the planner.
	par := MustOpen(Config{Parallelism: 4})
	seedBig(t, par, 256)
	res, err := par.Select("t", func(r table.Row) bool { return r[1].AsInt() >= 0 }, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 256 {
		t.Fatalf("large select returned %d rows, want 256", len(res.Rows))
	}
	if got := par.LastPlan.SelectAlg; got != exec.SelectLarge && got != exec.SelectSmall {
		t.Logf("planner chose %s", got)
	}
}

func TestParallelGroupAggregateFallsBackOnTightMemory(t *testing.T) {
	// 64 distinct groups concentrated in one partition: each worker's
	// budget/P share cannot hold the worst-case group table, so the
	// engine must fall back to the serial operator (whose full budget
	// suffices) instead of failing — and the fallback decision is made
	// up front from public sizes, never mid-scan.
	run := func(parallelism int) *Result {
		db := MustOpen(Config{ObliviousMemory: 2048, Parallelism: parallelism})
		vals := make([]int64, 256)
		for i := 0; i < 64; i++ {
			vals[i] = int64(i) // partition 0 holds every distinct value
		}
		seedFlat(t, db, vals)
		res, err := db.GroupAggregate("t", nil,
			func(r table.Row) table.Value { return r[1] },
			[]AggregateSpec{{Kind: exec.AggCount}}, nil)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", parallelism, err)
		}
		return res
	}
	serial := run(1)
	par := run(4) // 2048/4 = 512 < 4*maxGroups(=256 blocks)*... forces fallback
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("fallback result differs: %d vs %d groups", len(par.Rows), len(serial.Rows))
	}
}

func TestParallelJoinFallsBackOnWideBuildRecords(t *testing.T) {
	// Build-side records wider than a worker's budget share: the
	// parallel hash join cannot hold even one build row per worker and
	// must fall back to the serial join rather than erroring.
	db := MustOpen(Config{ObliviousMemory: 2048, Parallelism: 4})
	wide := table.MustSchema(
		table.Column{Name: "pk", Kind: table.KindInt},
		table.Column{Name: "pad", Kind: table.KindString, Width: 900},
	)
	narrow := table.MustSchema(table.Column{Name: "fk", Kind: table.KindInt})
	if _, err := db.CreateTable("l", wide, TableOptions{Capacity: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("r", narrow, TableOptions{Capacity: 256}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Insert("l", table.Row{table.Int(int64(i)), table.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	rrows := make([]table.Row, 256)
	for i := range rrows {
		rrows[i] = table.Row{table.Int(int64(i % 8))}
	}
	if err := db.BulkLoad("r", rrows); err != nil {
		t.Fatal(err)
	}
	alg := exec.JoinHash
	res, err := db.Join("l", "r", "pk", "fk", JoinOptions{Force: &alg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 128 { // pk 0..3 each matches 32 foreign rows
		t.Fatalf("join returned %d rows, want 128", len(res.Rows))
	}
}
