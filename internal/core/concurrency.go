package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/storage"
)

// This file is the engine's read-concurrency layer. The database mutex
// is a read/write lock: mutations and DDL take the exclusive side, read
// statements take the shared side plus a per-slot execution context from
// a fixed pool (Config.ReadConcurrency), so the epoch scheduler can run
// several read slots truly in parallel. Each context owns what one
// concurrent statement must not share — a sealer (stateful nonce pool),
// a PRNG stream, a tracer, scratch buffers for every table it reads, and
// an oblivious-memory accountant at the full budget so the planner's
// algorithm picks match the serial engine exactly. The catalog itself is
// resolved through a copy-on-write snapshot republished on every DDL, so
// a reader never touches the live table map. See DESIGN.md §16 for the
// leakage argument.

// execCtx is the execution context one statement runs under: either the
// engine's own serial context (exclusive lock held, legacy direct reads)
// or one checked-out read-slot context (shared lock held, reads through
// per-context views).
type execCtx struct {
	db     *DB
	enc    *enclave.Enclave
	serial bool
	snap   *catalogSnap
	views  map[*storage.Flat]*storage.ReadView
}

// input adapts a flat table for the operators under this context. The
// serial context hands the table over directly (byte-identical to the
// pre-concurrency engine, including the trace landing on the table's own
// region); a read-slot context reads through its own view — own
// plaintext scratch, own decode buffer, accesses recorded on the
// context's tracer under the table's name.
func (c *execCtx) input(f *storage.Flat) exec.Input {
	if c.serial {
		return exec.FromFlat(f)
	}
	v, ok := c.views[f]
	if !ok {
		v = f.ReadViewVia(c.enc)
		c.views[f] = v
	}
	return v
}

// lookup resolves a table name: read-slot contexts against their
// immutable catalog snapshot, the serial context against the live map
// (DDL inside a transaction must see its own creations).
func (c *execCtx) lookup(name string) (*Table, error) {
	if c.serial {
		return c.db.lookup(name)
	}
	t, ok := c.snap.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	return t, nil
}

// catalogSnap is one immutable catalog version. Writers republish a
// fresh copy on every catalog change (copy-on-write); readers load the
// pointer once per statement and resolve every name against it.
type catalogSnap struct {
	tables map[string]*Table
	epoch  uint64
}

// publishCatalog bumps the catalog epoch and publishes a fresh snapshot.
// Called with the exclusive lock held, after every catalog change.
func (db *DB) publishCatalog() {
	db.catEpoch++
	tables := make(map[string]*Table, len(db.tables))
	for k, v := range db.tables {
		tables[k] = v
	}
	db.snap.Store(&catalogSnap{tables: tables, epoch: db.catEpoch})
}

// LockStats counts engine lock traffic: acquisitions of each side, and
// how many had to wait (the try-lock failed and the caller blocked).
// Counts of executed statements by kind are conceded leakage already —
// the epoch scheduler's slot stream reveals them — and these counters
// carry no timing, so they are safe to publish (DESIGN.md §13).
type LockStats struct {
	SharedAcquires, ExclusiveAcquires uint64
	SharedWaits, ExclusiveWaits       uint64
}

// lockCounters is the hot-path half of LockStats.
type lockCounters struct {
	sharedAcquires, exclusiveAcquires atomic.Uint64
	sharedWaits, exclusiveWaits       atomic.Uint64
}

// lockWrite takes the exclusive side, counting contention.
func (db *DB) lockWrite() {
	if !db.mu.TryLock() {
		db.lockC.exclusiveWaits.Add(1)
		db.mu.Lock()
	}
	db.lockC.exclusiveAcquires.Add(1)
}

// lockShared takes the shared side, counting contention.
func (db *DB) lockShared() {
	if !db.mu.TryRLock() {
		db.lockC.sharedWaits.Add(1)
		db.mu.RLock()
	}
	db.lockC.sharedAcquires.Add(1)
}

// LockStats reports the engine's lock-contention counters.
func (db *DB) LockStats() LockStats {
	return LockStats{
		SharedAcquires:    db.lockC.sharedAcquires.Load(),
		ExclusiveAcquires: db.lockC.exclusiveAcquires.Load(),
		SharedWaits:       db.lockC.sharedWaits.Load(),
		ExclusiveWaits:    db.lockC.exclusiveWaits.Load(),
	}
}

// ReadConcurrency reports the read-slot pool size (1 when reads
// serialize on the exclusive lock).
func (db *DB) ReadConcurrency() int {
	if db.readCtxs == nil {
		return 1
	}
	return cap(db.readCtxs)
}

// beginRead enters a read statement: with a pool, the shared lock plus a
// checked-out context whose budget is re-synced to the parent's current
// availability (standing ORAM reservations included, so operator buffer
// sizing matches the serial engine) and whose catalog snapshot is the
// latest published; without one, the exclusive lock and the serial
// context, exactly the pre-concurrency engine. The returned release
// undoes both.
func (db *DB) beginRead() (*execCtx, func()) {
	if db.readCtxs == nil {
		db.lockWrite()
		return db.serialCtx, db.mu.Unlock
	}
	db.lockShared()
	ctx := <-db.readCtxs
	ctx.enc.Rebudget(db.enc.Available())
	ctx.snap = db.snap.Load()
	return ctx, func() {
		ctx.snap = nil
		clear(ctx.views) // drop per-statement views (temps would pin their stores)
		db.readCtxs <- ctx
		db.mu.RUnlock()
	}
}
