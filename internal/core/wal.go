package core

import (
	"fmt"

	"oblidb/internal/table"
	"oblidb/internal/wal"
)

// AttachWAL starts journaling this database's mutations into l, as §3
// sketches: one sealed append per inserted, rewritten, or deleted row,
// before the mutation itself. Existing tables are registered with the
// log; tables created afterwards register automatically. Appends leak
// only the (public) mutation count.
func (db *DB) AttachWAL(l *wal.Log) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		if err := l.Register(t.name, t.schema); err != nil {
			return err
		}
	}
	db.wal = l
	return nil
}

// DetachWAL stops journaling.
func (db *DB) DetachWAL() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.wal = nil
}

// logMutation appends one entry unless recovery is replaying.
func (db *DB) logMutation(op wal.Op, tableName string, row table.Row) error {
	if db.wal == nil || db.recovering {
		return nil
	}
	return db.wal.Append(wal.Entry{Op: op, Table: tableName, Row: row.Clone()})
}

// Recover rebuilds this database from a journal, standard redo-recovery
// style: the log is folded into each table's final row multiset inside
// the enclave — inserts and update post-images add a row, deletes and
// update pre-images remove one equal row — and the result is bulk-loaded.
// The database's tables must already exist (schemas are not journaled)
// and start empty; recovery leaks only the log length and final table
// sizes.
func (db *DB) Recover(l *wal.Log) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		if t.NumRows() != 0 {
			return fmt.Errorf("core: recovery requires empty tables; %q has %d rows", t.name, t.NumRows())
		}
	}
	state := make(map[string][]table.Row, len(db.tables))
	err := l.Replay(func(e wal.Entry) error {
		if _, err := db.lookup(e.Table); err != nil {
			return err
		}
		switch e.Op {
		case wal.OpInsert, wal.OpUpdate:
			state[e.Table] = append(state[e.Table], e.Row.Clone())
			return nil
		case wal.OpDelete:
			rows := state[e.Table]
			for i, r := range rows {
				if rowsEqual(r, e.Row) {
					state[e.Table] = append(rows[:i], rows[i+1:]...)
					return nil
				}
			}
			return fmt.Errorf("core: journal deletes a row absent from the replayed state")
		}
		return fmt.Errorf("core: unknown WAL op %d", e.Op)
	})
	if err != nil {
		return err
	}
	db.recovering = true
	defer func() { db.recovering = false }()
	for name, rows := range state {
		if err := db.bulkLoad(name, rows); err != nil {
			return err
		}
	}
	return nil
}

func rowsEqual(a, b table.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
