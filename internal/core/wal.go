package core

import (
	"fmt"
	"sort"
	"strings"

	"oblidb/internal/oberr"
	"oblidb/internal/table"
	"oblidb/internal/wal"
)

// This file wires the durable journal (internal/wal) into the engine.
// Every mutating statement runs inside an implicit transaction: its
// journal records are staged as the mutation pass applies, and endMutation
// commits them (or rewinds the stage and undoes the in-memory changes on
// failure). Explicit transactions (ExecutePlanTx) stretch the same
// mechanism across statements. Journaling happens *after* each row is
// applied, so a pass that fails midway stages nothing replayable — the
// log can never describe state that did not exist (the seed logged ahead
// of the pass and could).

// AttachWAL starts journaling this database's mutations into l. The log
// is immediately checkpointed to a snapshot of the current catalog and
// rows, so the file is self-contained: Recover needs no pre-existing
// tables. Journaling leaks only mutation counts and schemas — public
// under the paper's model (§3).
func (db *DB) AttachWAL(l *wal.Log) error {
	db.lockWrite()
	defer db.mu.Unlock()
	if db.wal != nil {
		return fmt.Errorf("core: a journal is already attached")
	}
	if l.Staged() != 0 {
		return fmt.Errorf("core: journal has %d staged records", l.Staged())
	}
	db.wal = l
	if err := db.checkpointLocked(); err != nil {
		db.wal = nil
		return err
	}
	return nil
}

// DetachWAL stops journaling.
func (db *DB) DetachWAL() {
	db.lockWrite()
	defer db.mu.Unlock()
	db.wal = nil
}

// Checkpoint compacts the journal to a snapshot of the live state.
func (db *DB) Checkpoint() error {
	db.lockWrite()
	defer db.mu.Unlock()
	if db.wal == nil {
		return fmt.Errorf("core: no journal attached")
	}
	return db.checkpointLocked()
}

// checkpointLocked snapshots every table — definition plus live rows, in
// sorted name order — into a fresh journal file that atomically replaces
// the old one.
func (db *DB) checkpointLocked() error {
	return db.wal.Checkpoint(func() error {
		names := make([]string, 0, len(db.tables))
		for n := range db.tables {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			t := db.tables[n]
			if err := db.wal.AppendCreate(db.tableDef(t)); err != nil {
				return err
			}
			rows, err := db.collectMatching(t, table.All)
			if err != nil {
				return err
			}
			for _, r := range rows {
				if err := db.wal.Append(wal.OpInsert, t.name, t.schema, r); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// tableDef captures a table's journaled definition. Capacity reflects
// the current flat capacity so recovery re-creates the grown table
// without replaying the growth.
func (db *DB) tableDef(t *Table) wal.TableDef {
	def := wal.TableDef{
		Name:             t.name,
		Schema:           t.schema,
		Kind:             uint8(t.kind),
		Capacity:         t.capacity,
		ObliviousInserts: t.oblivIn,
		RecursiveORAM:    t.recORAM,
	}
	if t.flat != nil {
		def.Capacity = t.flat.Capacity()
	}
	if t.keyCol >= 0 {
		def.KeyColumn = t.schema.Col(t.keyCol).Name
	}
	return def
}

// maybeCheckpointLocked compacts the journal when it has outgrown its
// configured threshold. A failed checkpoint is not an error for the
// statement that triggered it — the old file remains valid and the next
// commit retries.
func (db *DB) maybeCheckpointLocked() {
	if db.wal != nil && db.wal.ShouldCheckpoint() {
		_ = db.checkpointLocked()
	}
}

// logMutation stages one journal record for an applied row mutation.
func (db *DB) logMutation(op wal.Op, t *Table, row table.Row) error {
	if db.wal == nil || db.recovering || db.inUndo {
		return nil
	}
	return db.wal.Append(op, t.name, t.schema, row)
}

// trackingMutations reports whether mutation bodies must record undo
// entries and journal records: yes under a journal or an explicit
// transaction, never while replaying or unwinding.
func (db *DB) trackingMutations() bool {
	return (db.wal != nil || db.inTx) && !db.recovering && !db.inUndo
}

// mutationMarks snapshots the journal stage and undo log at statement
// entry, so a failure can rewind exactly this statement's effects.
func (db *DB) mutationMarks() (walMark, undoMark int) {
	if db.wal != nil {
		walMark = db.wal.Staged()
	}
	return walMark, len(db.undo)
}

// endMutation finishes one mutating statement: on error, its staged
// journal records are discarded and its in-memory changes undone; on
// success outside an explicit transaction, the staged batch commits
// durably. Inside a transaction both stay staged for the enclosing
// commit. During recovery or unwinding it is a passthrough.
func (db *DB) endMutation(err error, walMark, undoMark int) error {
	if db.recovering || db.inUndo {
		return err
	}
	if err != nil {
		if rerr := db.rollbackTo(walMark, undoMark); rerr != nil {
			return db.latchBroken(err, rerr)
		}
		return err
	}
	if db.inTx {
		return nil
	}
	return db.commitLocked(walMark, undoMark)
}

// latchBroken marks the engine broken: a statement failed AND the undo
// replay that should have contained it failed too (a second store
// fault mid-rollback), so the in-memory state no longer matches the
// journal. Every later statement is refused with the same typed
// CodeEngineFailed error — the containment guarantee is honest: rather
// than serve potentially wrong answers, the engine insists on being
// rebuilt from the journal (Recover on a fresh engine), exactly what a
// crash would force.
func (db *DB) latchBroken(err, rerr error) error {
	db.broken = oberr.Wrapf(oberr.CodeEngineFailed, err,
		"core: rollback failed (%v); engine state is untrusted, recover from the journal", rerr)
	return db.broken
}

// Broken reports the containment-failure latch: nil while the engine's
// in-memory state is trustworthy, the typed CodeEngineFailed error
// after a failed rollback. The chaos harness polls it to decide when
// to recover from the journal.
func (db *DB) Broken() error {
	db.lockShared()
	defer db.mu.RUnlock()
	return db.broken
}

// commitLocked makes the staged batch durable and clears the undo log.
// If the journal write fails, the in-memory changes are rolled back too:
// acknowledged means durable.
func (db *DB) commitLocked(walMark, undoMark int) error {
	if db.wal != nil {
		if err := db.wal.Commit(); err != nil {
			if rerr := db.rollbackTo(walMark, undoMark); rerr != nil {
				return db.latchBroken(fmt.Errorf("core: journal commit failed: %w", err), rerr)
			}
			return fmt.Errorf("core: journal commit failed, changes rolled back: %w", err)
		}
		db.maybeCheckpointLocked()
	}
	db.undo = db.undo[:0]
	return nil
}

// rollbackTo rewinds the journal stage and replays the undo log (newest
// first) down to the marks.
func (db *DB) rollbackTo(walMark, undoMark int) error {
	if db.wal != nil {
		db.wal.Rewind(walMark)
	}
	db.inUndo = true
	defer func() { db.inUndo = false }()
	var firstErr error
	for i := len(db.undo) - 1; i >= undoMark; i-- {
		if err := db.applyUndo(db.undo[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	db.undo = db.undo[:undoMark]
	return firstErr
}

// undoOp tags one undo record.
type undoOp uint8

const (
	// undoInsert removes the rows in post (recorded before the insert
	// applied, so removal tolerates rows the failed pass never wrote).
	undoInsert undoOp = iota
	// undoDelete re-inserts the rows in pre.
	undoDelete
	// undoUpdate removes each post row and re-inserts its pre image.
	undoUpdate
	// undoCreate drops the named table.
	undoCreate
)

// undoRec is one entry of the in-memory undo log, recorded by mutation
// bodies so a failed statement (or an explicit ROLLBACK) restores the
// engine to the state the durable journal describes.
type undoRec struct {
	op        undoOp
	table     string
	pre, post []table.Row
}

// applyUndo reverses one undo record.
func (db *DB) applyUndo(r undoRec) error {
	switch r.op {
	case undoCreate:
		t, ok := db.tables[strings.ToLower(r.table)]
		if !ok {
			return nil
		}
		if t.index != nil {
			t.index.Close()
		}
		delete(db.tables, strings.ToLower(r.table))
		db.publishCatalog()
		return nil
	}
	t, err := db.lookup(r.table)
	if err != nil {
		return err
	}
	switch r.op {
	case undoInsert:
		for _, row := range r.post {
			if err := db.removeOneRow(t, row); err != nil {
				return err
			}
		}
	case undoDelete:
		// The pass may have removed any subset of pre. Remove whatever
		// copies remain (tolerating absence), then reinsert the full
		// pre multiset — the result is exactly pre regardless of how far
		// the failed pass got.
		for _, row := range r.pre {
			if err := db.removeOneRow(t, row); err != nil {
				return err
			}
		}
		for _, row := range r.pre {
			if err := db.applyInsert(t, row); err != nil {
				return err
			}
		}
	case undoUpdate:
		// The pass may have rewritten any subset of pre into post. Clear
		// both images (each row is present as exactly one of the two),
		// then reinsert the pre multiset.
		for i := range r.post {
			if err := db.removeOneRow(t, r.post[i]); err != nil {
				return err
			}
		}
		for i := range r.pre {
			if err := db.removeOneRow(t, r.pre[i]); err != nil {
				return err
			}
		}
		for i := range r.pre {
			if err := db.applyInsert(t, r.pre[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// removeOneRow deletes at most one row equal to row from each
// representation. Absence is not an error: undoInsert records are
// written before the insert applies, so the row may never have landed.
func (db *DB) removeOneRow(t *Table, row table.Row) error {
	if t.flat != nil {
		done := false
		if _, err := t.flat.Delete(func(r table.Row) bool {
			if done || !rowsEqual(r, row) {
				return false
			}
			done = true
			return true
		}); err != nil {
			return err
		}
	}
	if t.index != nil {
		if _, err := t.index.Delete(row[t.keyCol].AsInt()); err != nil {
			return err
		}
	}
	return nil
}

// Recover rebuilds this database from a journal, standard redo-recovery
// style: committed entries are folded into each table's final row
// multiset inside the enclave — inserts and update post-images add a
// row, deletes remove one equal row, journaled DDL creates and drops
// tables — and the result is bulk-loaded. The database must be empty;
// the journal carries the catalog. Recovery leaks only the log length
// and the final table sizes.
func (db *DB) Recover(l *wal.Log) error {
	db.lockWrite()
	defer db.mu.Unlock()
	if len(db.tables) != 0 {
		return fmt.Errorf("core: recovery requires an empty database, have %d tables", len(db.tables))
	}
	db.recovering = true
	defer func() { db.recovering = false }()
	state := make(map[string][]table.Row)
	err := l.Replay(func(e wal.Entry) error {
		switch e.Op {
		case wal.OpCreateTable:
			d := e.Def
			opts := TableOptions{
				Kind:             StorageKind(d.Kind),
				KeyColumn:        d.KeyColumn,
				Capacity:         d.Capacity,
				ObliviousInserts: d.ObliviousInserts,
				RecursiveORAM:    d.RecursiveORAM,
			}
			if _, err := db.createTableBody(d.Name, d.Schema, opts); err != nil {
				return err
			}
			state[strings.ToLower(d.Name)] = nil
			return nil
		case wal.OpDropTable:
			if err := db.dropTableBody(e.Table); err != nil {
				return err
			}
			delete(state, strings.ToLower(e.Table))
			return nil
		case wal.OpInsert, wal.OpUpdate:
			key := strings.ToLower(e.Table)
			if _, ok := state[key]; !ok {
				return fmt.Errorf("core: journal mutates %q before defining it", e.Table)
			}
			state[key] = append(state[key], e.Row)
			return nil
		case wal.OpDelete:
			key := strings.ToLower(e.Table)
			rows := state[key]
			for i, r := range rows {
				if rowsEqual(r, e.Row) {
					state[key] = append(rows[:i], rows[i+1:]...)
					return nil
				}
			}
			return fmt.Errorf("core: journal deletes a row absent from the replayed state")
		}
		return fmt.Errorf("core: unknown WAL op %d", e.Op)
	})
	if err != nil {
		return err
	}
	// Load in sorted name order: map order would randomize the replay
	// trace run to run, which both breaks trace comparisons and is noise
	// the host need not see.
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := state[name]
		if len(rows) == 0 {
			continue
		}
		if err := db.bulkLoad(name, rows); err != nil {
			return err
		}
	}
	return nil
}

// WALStats is a metrics snapshot of the attached journal.
type WALStats struct {
	// Attached reports whether a journal is attached.
	Attached bool
	// Entries and Commits are monotonic totals across checkpoints.
	Entries, Commits uint64
	// Checkpoints counts completed compactions.
	Checkpoints uint64
	// SizeBytes is the committed size of the current file.
	SizeBytes int64
}

// WALStats reports journal counters (zero when none is attached).
func (db *DB) WALStats() WALStats {
	db.lockWrite()
	defer db.mu.Unlock()
	if db.wal == nil {
		return WALStats{}
	}
	return WALStats{
		Attached:    true,
		Entries:     db.wal.TotalEntries(),
		Commits:     db.wal.TotalCommits(),
		Checkpoints: db.wal.Checkpoints(),
		SizeBytes:   db.wal.SizeBytes(),
	}
}

func rowsEqual(a, b table.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
