// Package planner implements ObliDB's query planner (§5). It chooses the
// selection and join operator variants using only information the system
// already leaks — input and output table sizes and the oblivious-memory
// budget — so planning adds no leakage beyond the final operator choice.
//
// For selections, the planner's preliminary scan reads every block once
// whatever the data: its trace is identical for all inputs of a size. It
// computes (1) the number of matching rows and (2) whether they are
// adjacent, exactly the two statistics §5 lists, and the computed output
// size is handed to the operators that pre-allocate output storage — which
// is why the paper calls this first scan "for free".
//
// For joins the planner reads no data at all: §5 observes that all join
// algorithms do work determined entirely by the input sizes, so it plugs
// the sizes and the memory budget into the Figure 3 complexity
// expressions and picks the cheapest.
package planner

import (
	"math"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/table"
)

// SelectStats is what the preliminary scan learns, plus the public
// geometry the cost expressions need.
type SelectStats struct {
	// InputBlocks is |T| in sealed blocks — the unit of every untrusted
	// access, and hence of every cost expression.
	InputBlocks int
	// InputRows is the row-slot capacity, InputBlocks × RowsPerBlock.
	InputRows int
	// RowsPerBlock is the packing factor R.
	RowsPerBlock int
	// Matching is |R|, the number of rows satisfying the predicate.
	Matching int
	// Contiguous reports whether the matching rows form one contiguous
	// run of row slots.
	Contiguous bool
	// Start is the row-slot index of the first matching row (meaningful
	// when Matching > 0).
	Start int
}

// ScanStats makes the planner's preliminary pass: one read per sealed
// block, whatever the data.
func ScanStats(in exec.Input, pred table.Pred) (SelectStats, error) {
	st := SelectStats{
		InputBlocks:  in.Blocks(),
		InputRows:    exec.RowSlots(in),
		RowsPerBlock: in.RowsPerBlock(),
		Contiguous:   true,
		Start:        -1,
	}
	last := -1
	err := exec.ForEachRow(in, func(i int, row table.Row, used bool) error {
		if !used || !pred(row) {
			return nil
		}
		if st.Start < 0 {
			st.Start = i
		} else if i != last+1 {
			st.Contiguous = false
		}
		last = i
		st.Matching++
		return nil
	})
	if err != nil {
		return st, err
	}
	if st.Matching == 0 {
		st.Contiguous = false
	}
	return st, nil
}

// blocksFor converts a row count to sealed blocks at the stats' packing.
func (st SelectStats) blocksFor(rows int) float64 {
	r := st.RowsPerBlock
	if r < 1 {
		r = 1
	}
	return math.Ceil(float64(rows) / float64(r))
}

// rowSlots returns the row capacity, defaulting to InputBlocks × R for
// stats built without the packed fields (R = 1 geometry).
func (st SelectStats) rowSlots() float64 {
	if st.InputRows > 0 {
		return float64(st.InputRows)
	}
	r := st.RowsPerBlock
	if r < 1 {
		r = 1
	}
	return float64(st.InputBlocks * r)
}

// Config holds the planner's precomputed thresholds (§5: "a precomputed
// set of thresholds decide when to run each operator").
type Config struct {
	// DisableContinuous turns off the Continuous algorithm, trading its
	// contiguity leakage away (§4.1); used for the Opaque comparison.
	DisableContinuous bool
	// LargeFraction is the |R|/|T| ratio above which Large applies. Zero
	// means 0.9.
	LargeFraction float64
}

func (c Config) largeFraction() float64 {
	if c.LargeFraction <= 0 {
		return 0.9
	}
	return c.LargeFraction
}

// ChooseSelect picks the selection operator for the scanned statistics by
// plugging |T|, |R|, the packing factor, and the oblivious-memory budget
// into each operator's access-count expression and taking the cheapest
// applicable one — the paper's "precomputed set of thresholds" realized
// as this implementation's exact costs, so the pick is the measured
// winner (Figure 13).
//
// Costs in untrusted *block* accesses, N=|T| in blocks, n=row slots,
// R=|R| matching rows, B=buffer rows:
//
//	Small:      ceil(R/B)·N reads + ceil(R/rpb) writes  (needs oblivious memory)
//	Large:      5N   (copy: N+N; clear: N+N+N)          (only when R ≈ n)
//	Continuous: N + 2n   (block reads in + per-row RMW of the output)
//	Hash:       N + 20n  (block reads in + 10 slot RMWs per row)
//
// Packing shifts the balance exactly as the implementation does: the
// block-sequential Small and Large get ~rpb× cheaper while the
// row-scattered Continuous and Hash keep their per-row RMW cost.
func ChooseSelect(e *enclave.Enclave, recSize int, st SelectStats, cfg Config) exec.SelectAlgorithm {
	alg, _ := chooseSelectCost(e, recSize, st, cfg)
	return alg
}

// chooseSelectCost is ChooseSelect returning the winning cost as well,
// for the optimizer pass's plan annotations.
func chooseSelectCost(e *enclave.Enclave, recSize int, st SelectStats, cfg Config) (exec.SelectAlgorithm, float64) {
	costHash := SelectCost(exec.SelectHash, e, recSize, st, cfg)
	costSmall := SelectCost(exec.SelectSmall, e, recSize, st, cfg)
	costLarge := SelectCost(exec.SelectLarge, e, recSize, st, cfg)
	costCont := SelectCost(exec.SelectContinuous, e, recSize, st, cfg)

	best, alg := costHash, exec.SelectHash
	if costLarge < best {
		best, alg = costLarge, exec.SelectLarge
	}
	if costCont < best {
		best, alg = costCont, exec.SelectContinuous
	}
	if costSmall < best {
		best, alg = costSmall, exec.SelectSmall
	}
	return alg, best
}

// SelectCost returns one algorithm's estimated untrusted access count
// for the scanned statistics (+Inf when the algorithm does not apply).
// These are the Figure-3-style expressions ChooseSelect minimizes over.
func SelectCost(alg exec.SelectAlgorithm, e *enclave.Enclave, recSize int, st SelectStats, cfg Config) float64 {
	nB := float64(st.InputBlocks)
	rows := st.rowSlots()
	switch alg {
	case exec.SelectHash:
		return nB + 20*rows
	case exec.SelectSmall:
		if recSize <= 0 {
			return math.Inf(1)
		}
		bufRows := e.Available() / recSize
		if bufRows <= 0 {
			return math.Inf(1)
		}
		passes := (st.Matching + bufRows - 1) / bufRows
		if passes < 1 {
			passes = 1
		}
		return float64(passes)*nB + st.blocksFor(st.Matching)
	case exec.SelectLarge:
		if float64(st.Matching) >= cfg.largeFraction()*rows {
			return 5 * nB
		}
		return math.Inf(1)
	case exec.SelectContinuous:
		if !cfg.DisableContinuous && st.Contiguous && st.Matching > 0 {
			return nB + 2*rows
		}
		return math.Inf(1)
	}
	return math.Inf(1)
}

// MinPartitionBlocks is the smallest partition worth a worker: below
// this, goroutine handoff and per-partition padding dominate the scan.
const MinPartitionBlocks = 32

// ChooseParallelism picks the partition count P for a parallel operator
// from the same public-size-only inputs as the rest of the planner (§5):
// the table size in blocks, the record size, the unreserved oblivious
// memory, and the worker-pool size (bounded by GOMAXPROCS at engine
// open). The choice leaks nothing beyond P itself, which — like the
// operator choice — is conceded plan leakage.
func ChooseParallelism(e *enclave.Enclave, blocks, recSize, maxWorkers int) int {
	p := maxWorkers
	if m := blocks / MinPartitionBlocks; p > m {
		p = m
	}
	// Every worker needs a useful slice of oblivious memory — enough to
	// buffer at least MinPartitionBlocks records — or the per-partition
	// operators degrade to their worst cases.
	if recSize > 0 {
		if m := e.Available() / (MinPartitionBlocks * recSize); p > m {
			p = m
		}
	}
	if p < 1 {
		p = 1
	}
	return p
}

// JoinSizes carries the public inputs of join planning.
type JoinSizes struct {
	// T1Blocks and T2Blocks are the table sizes in sealed blocks (the
	// traced access unit).
	T1Blocks, T2Blocks int
	// T1Rows and T2Rows are the row-slot capacities (blocks × packing).
	// Zero means "same as blocks", i.e. the paper's R = 1 geometry.
	T1Rows, T2Rows int
	// BuildRecSize is the record size of T1 rows (the hash join's build
	// side); SortBlockSize is the combined-array element size of the
	// sort-merge joins.
	BuildRecSize, SortBlockSize int
}

func (s JoinSizes) rows() (int, int) {
	r1, r2 := s.T1Rows, s.T2Rows
	if r1 == 0 {
		r1 = s.T1Blocks
	}
	if r2 == 0 {
		r2 = s.T2Blocks
	}
	return r1, r2
}

// ChooseJoin picks the join algorithm from table sizes and the available
// oblivious memory, per §5: "If the amount of oblivious memory is large
// relative to the size of the first table, we always use the hash join.
// Otherwise, we plug in the table sizes and amount of oblivious memory
// into expressions denoting the ... runtimes ... and choose the smaller
// result." The expressions below count this implementation's untrusted
// block accesses exactly, so the planner's pick is the measured winner.
func ChooseJoin(e *enclave.Enclave, s JoinSizes) exec.JoinAlgorithm {
	alg, _ := chooseJoinCost(e, s)
	return alg
}

// chooseJoinCost is ChooseJoin returning the winning cost estimate as
// well, for the optimizer pass's plan annotations.
func chooseJoinCost(e *enclave.Enclave, s JoinSizes) (exec.JoinAlgorithm, float64) {
	avail := e.Available()
	rows1, rows2 := s.rows()
	buildRows := 0
	if s.BuildRecSize > 0 {
		buildRows = avail / s.BuildRecSize
	}
	if buildRows >= rows1 {
		// The whole build side fits: "we always use the hash join."
		return exec.JoinHash, float64(s.T1Blocks) + 3*float64(s.T2Blocks)
	}
	// Hash: read T1 once across chunks, then per chunk read T2's blocks
	// and seal one output block per packed probe group — plus sealing
	// the chunks×rows(T2)-slot output structure at allocation.
	costHash := math.Inf(1)
	if buildRows >= 1 {
		chunks := math.Ceil(float64(rows1) / float64(buildRows))
		costHash = float64(s.T1Blocks) + 3*chunks*float64(s.T2Blocks)
	}

	// Sort-merge: the combined array is record-granular (one record per
	// scratch block, whatever the input packing), so its network passes
	// cost 2n accesses over n = NextPow2(rows). A chunked sort runs
	// Σ (m - log2 C) substage passes for stages m = log2(2C)..log2(n),
	// plus one chunk pass per stage and the initial chunk pass.
	n := exec.NextPow2(rows1 + rows2)
	logN := log2i(n)
	sortPasses := func(chunk int) float64 {
		if chunk >= n {
			return 1
		}
		logC := log2i(chunk)
		passes := 1 // initial chunk sort
		for m := logC + 1; m <= logN; m++ {
			passes += m - logC // network substages j >= chunk
			if chunk > 1 {
				passes++ // in-enclave chunk merge
			}
		}
		return float64(passes)
	}
	// Building and merging: allocate + fill the combined array (reading
	// each input block once), then the merge scan allocates and writes
	// the n-slot output.
	fill := float64(4*n) + float64(s.T1Blocks+s.T2Blocks)
	costZero := fill + 2*float64(n)*sortPasses(1)
	costOpaque := math.Inf(1)
	sortChunk := 0
	if s.SortBlockSize > 0 {
		sortChunk = exec.FloorPow2(avail / s.SortBlockSize)
	}
	if sortChunk > 1 {
		costOpaque = fill + 2*float64(n)*sortPasses(sortChunk)
	}

	best, alg := costHash, exec.JoinHash
	if costOpaque < best {
		best, alg = costOpaque, exec.JoinOpaque
	}
	if costZero < best {
		best, alg = costZero, exec.JoinZeroOM
	}
	return alg, best
}

// log2i returns ceil(log2(n)) for n >= 1.
func log2i(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
