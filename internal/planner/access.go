package planner

import "oblidb/internal/plan"

// This file prices the paper's two storage methods (§3) against each
// other for one ranged read: a flat scan always touches every sealed
// block of the table, while the indexed method descends the oblivious
// B+ tree and walks the scanned segment, paying the ORAM's O(log N)
// factor per logical block touched. Both prices are functions of public
// sizes only — the catalog's block counts, the tree height, the ORAM
// geometry, and the key-range width (ranges come from statement
// literals, so the width is part of the query shape the adversary
// already sees).

// AccessChoice is the planner's verdict on how to serve one ranged read.
type AccessChoice struct {
	// UseIndex says the indexed method is estimated cheaper (always true
	// for index-only tables, always false for tables without an index).
	UseIndex bool
	// IndexCost and FlatCost are the two methods' estimated untrusted
	// block accesses. IndexCost is 0 when the table has no index.
	IndexCost, FlatCost int64
}

// indexLeafFill is the entries-per-leaf estimate used to price leaf-chain
// hops: bulk loads fill leaves to 3/4 of the tree's fanout of 8, and
// incremental splits keep occupancy between half and full.
const indexLeafFill = 6

// ChooseAccess prices flat-scan vs. indexed access for a read of r
// against the table described by m.
func ChooseAccess(m plan.TableMeta, r plan.KeyRange) AccessChoice {
	c := AccessChoice{FlatCost: int64(m.Blocks)}
	if !m.HasIndex {
		return c
	}
	est := rangeRows(r, m.Rows)
	perOp := m.IndexAccessesPerOp
	if perOp < 1 {
		perOp = 1
	}
	rpb := m.IndexRowsPerBlock
	if rpb < 1 {
		rpb = 1
	}
	// Tree operations: a point read costs the fixed padded lookup target
	// height+2; a range read descends once, then hops est/fill leaves and
	// reads est/R record blocks. Each operation is one ORAM access of
	// perOp untrusted block touches.
	var treeOps int64
	if est <= 1 {
		treeOps = int64(m.IndexHeight + 2)
	} else {
		leaves := (est + indexLeafFill - 1) / indexLeafFill
		recBlocks := (est + rpb - 1) / rpb
		treeOps = int64(m.IndexHeight + leaves + recBlocks)
	}
	c.IndexCost = treeOps * int64(perOp)
	if !m.HasFlat {
		c.UseIndex = true
		return c
	}
	c.UseIndex = c.IndexCost < c.FlatCost
	return c
}

// rangeRows is the public row estimate of a key range: its width, capped
// at the table's row capacity. The subtraction is two's-complement so a
// full range (MinInt64, MaxInt64) saturates instead of overflowing.
func rangeRows(r plan.KeyRange, rows int) int {
	if rows < 1 {
		rows = 1
	}
	w := uint64(r.Hi) - uint64(r.Lo)
	if w >= uint64(rows) {
		return rows
	}
	return int(w) + 1
}
