package planner

import (
	"testing"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/storage"
	"oblidb/internal/table"
	"oblidb/internal/trace"
)

func statsTable(t *testing.T, e *enclave.Enclave, vals []int64) *storage.Flat {
	t.Helper()
	s := table.MustSchema(table.Column{Name: "v", Kind: table.KindInt})
	f, err := storage.NewFlat(e, "t", s, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := f.InsertFast(table.Row{table.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func predEq(v int64) table.Pred {
	return func(r table.Row) bool { return r[0].AsInt() == v }
}

func TestScanStats(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	f := statsTable(t, e, []int64{0, 1, 1, 1, 0, 0})
	st, err := ScanStats(exec.FromFlat(f), predEq(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Matching != 3 || !st.Contiguous || st.Start != 1 || st.InputBlocks != 6 {
		t.Fatalf("stats = %+v", st)
	}

	f2 := statsTable(t, e, []int64{1, 0, 1, 0, 1, 0})
	st2, _ := ScanStats(exec.FromFlat(f2), predEq(1))
	if st2.Matching != 3 || st2.Contiguous {
		t.Fatalf("scattered stats = %+v", st2)
	}

	st3, _ := ScanStats(exec.FromFlat(f2), predEq(99))
	if st3.Matching != 0 || st3.Contiguous || st3.Start != -1 {
		t.Fatalf("empty stats = %+v", st3)
	}
}

func TestScanStatsTraceOblivious(t *testing.T) {
	run := func(vals []int64) *trace.Tracer {
		tr := trace.New()
		e := enclave.MustNew(enclave.Config{Tracer: tr})
		f := statsTable(t, e, vals)
		tr.Reset()
		if _, err := ScanStats(exec.FromFlat(f), predEq(1)); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run([]int64{1, 1, 1, 1, 0, 0, 0, 0})
	b := run([]int64{0, 0, 0, 0, 2, 2, 2, 2})
	if d := trace.Diff(a, b); d != "" {
		t.Fatalf("stats scan trace depends on data: %s", d)
	}
}

func TestChooseSelectBigMemory(t *testing.T) {
	// With the whole output fitting one enclave buffer, Small's single
	// pass (N+R accesses) beats everything.
	e := enclave.MustNew(enclave.Config{}) // 20 MB
	const rec = 100
	for _, st := range []SelectStats{
		{InputBlocks: 1000, Matching: 50},
		{InputBlocks: 1000, Matching: 50, Contiguous: true},
		{InputBlocks: 1000, Matching: 950},
		{InputBlocks: 1000, Matching: 0},
	} {
		if got := ChooseSelect(e, rec, st, Config{}); got != exec.SelectSmall {
			t.Errorf("%+v: chose %s, want Small", st, got)
		}
	}
}

func TestChooseSelectPaperPattern(t *testing.T) {
	// With a buffer near 1.5% of the table, the Figure 13 pattern
	// emerges: Small for small scattered outputs, Continuous for runs,
	// Large for almost-everything outputs.
	const rec = 100
	e := enclave.MustNew(enclave.Config{ObliviousMemory: 15 * rec}) // 15-row buffer vs 1000-row table
	cases := []struct {
		name string
		st   SelectStats
		cfg  Config
		want exec.SelectAlgorithm
	}{
		{"5% scattered", SelectStats{InputBlocks: 1000, Matching: 50}, Config{}, exec.SelectSmall},
		{"5% contiguous", SelectStats{InputBlocks: 1000, Matching: 50, Contiguous: true}, Config{}, exec.SelectContinuous},
		{"5% contiguous, disabled", SelectStats{InputBlocks: 1000, Matching: 50, Contiguous: true}, Config{DisableContinuous: true}, exec.SelectSmall},
		{"95% scattered", SelectStats{InputBlocks: 1000, Matching: 950}, Config{}, exec.SelectLarge},
		{"95% contiguous", SelectStats{InputBlocks: 1000, Matching: 950, Contiguous: true}, Config{}, exec.SelectContinuous},
	}
	for _, c := range cases {
		if got := ChooseSelect(e, rec, c.st, c.cfg); got != c.want {
			t.Errorf("%s: chose %s, want %s", c.name, got, c.want)
		}
	}
}

func TestChooseSelectNoMemory(t *testing.T) {
	e := enclave.MustNew(enclave.Config{ObliviousMemory: 1})
	const rec = 100
	if got := ChooseSelect(e, rec, SelectStats{InputBlocks: 1000, Matching: 950}, Config{}); got != exec.SelectLarge {
		t.Errorf("95%% with no memory chose %s, want Large", got)
	}
	if got := ChooseSelect(e, rec, SelectStats{InputBlocks: 1000, Matching: 200}, Config{}); got != exec.SelectHash {
		t.Errorf("20%% with no memory chose %s, want Hash", got)
	}
	if got := ChooseSelect(e, rec, SelectStats{InputBlocks: 1000, Matching: 200, Contiguous: true}, Config{}); got != exec.SelectContinuous {
		t.Errorf("contiguous with no memory chose %s, want Continuous", got)
	}
}

func TestChooseJoin(t *testing.T) {
	sizes := func(n1, n2 int) JoinSizes {
		return JoinSizes{T1Blocks: n1, T2Blocks: n2, BuildRecSize: 64, SortBlockSize: 80}
	}
	// Plenty of memory: hash join, always (§5).
	e := enclave.MustNew(enclave.Config{})
	if got := ChooseJoin(e, sizes(10000, 25000)); got != exec.JoinHash {
		t.Errorf("big memory chose %s, want Hash", got)
	}
	// Very tight memory, large tables: the sort-merge join wins because
	// the hash join's chunk count explodes.
	tight := enclave.MustNew(enclave.Config{ObliviousMemory: 25 * 64})
	if got := ChooseJoin(tight, sizes(10000, 25000)); got != exec.JoinOpaque {
		t.Errorf("tight memory large tables chose %s, want Opaque", got)
	}
	// Tight memory, tiny T2: hash join still cheaper.
	if got := ChooseJoin(tight, sizes(10000, 100)); got != exec.JoinHash {
		t.Errorf("tiny T2 chose %s, want Hash", got)
	}
	// Zero oblivious memory: only 0-OM can sort.
	zero := enclave.NewZeroOblivious(nil)
	if got := ChooseJoin(zero, sizes(10000, 25000)); got != exec.JoinZeroOM {
		t.Errorf("zero memory chose %s, want 0-OM", got)
	}
}

func TestChooseParallelism(t *testing.T) {
	e := enclave.MustNew(enclave.Config{})
	// Plenty of blocks and memory: take the whole pool.
	if p := ChooseParallelism(e, 4096, 64, 8); p != 8 {
		t.Fatalf("large table chose P=%d, want 8", p)
	}
	// Tiny table: not worth splitting.
	if p := ChooseParallelism(e, 16, 64, 8); p != 1 {
		t.Fatalf("tiny table chose P=%d, want 1", p)
	}
	// Partition floor: 96 blocks support at most 3 partitions.
	if p := ChooseParallelism(e, 96, 64, 8); p != 3 {
		t.Fatalf("96 blocks chose P=%d, want 3", p)
	}
	// Starved oblivious memory clamps the pool.
	tight := enclave.MustNew(enclave.Config{ObliviousMemory: 1})
	tight.Reserve(1)
	if p := ChooseParallelism(tight, 4096, 64, 8); p != 1 {
		t.Fatalf("memory-starved engine chose P=%d, want 1", p)
	}
}
