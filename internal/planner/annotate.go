package planner

import (
	"math"

	"oblidb/internal/enclave"
	"oblidb/internal/exec"
	"oblidb/internal/plan"
)

// Annotate is the optimizer pass over a compiled plan: it walks the IR
// bottom-up and fills every node's Choice with the algorithm,
// parallelism, and cost the planner derives from *public* information
// alone — catalog sizes, the oblivious-memory budget, the worker-pool
// size. Nothing here reads table data or argument values, so annotating
// (and rendering via EXPLAIN) leaks exactly what the paper already
// concedes a query plan leaks (§2.3).
//
// Selection nodes are annotated with the padded estimate |R| = |T| (the
// stats scan that learns the exact |R| runs only at execution); their
// Choice is marked Estimated. Join, sort, and limit decisions depend on
// sizes alone, so their annotations are the runtime picks.
func Annotate(root plan.Node, cat plan.Catalog, e *enclave.Enclave, cfg Config, maxWorkers int) {
	annotate(root, cat, e, cfg, maxWorkers, false)
}

// nodeInfo is the public size estimate a subtree produces.
type nodeInfo struct {
	blocks  int // output size in sealed blocks (padded estimate)
	rows    int // output row slots (blocks × rpb)
	rpb     int // packing factor R of the output
	recSize int // output record size in bytes
}

// geom fills a nodeInfo's derived fields from rows and R.
func geom(rows, rpb, recSize int) nodeInfo {
	if rpb < 1 {
		rpb = 1
	}
	return nodeInfo{
		blocks:  (rows + rpb - 1) / rpb,
		rows:    rows,
		rpb:     rpb,
		recSize: recSize,
	}
}

// fused marks a Filter that is the direct input of an Aggregate,
// GroupBy, or Sort: the interpreter folds its predicate into that
// operator's own scan, so no SELECT algorithm runs and no intermediate
// table exists.
func annotate(n plan.Node, cat plan.Catalog, e *enclave.Enclave, cfg Config, maxWorkers int, fused bool) nodeInfo {
	rec := func(child plan.Node) nodeInfo { return annotate(child, cat, e, cfg, maxWorkers, false) }
	recFused := func(child plan.Node) nodeInfo { return annotate(child, cat, e, cfg, maxWorkers, true) }
	switch x := n.(type) {
	case *plan.Scan:
		m, ok := cat.TableMeta(x.Table)
		if !ok {
			return nodeInfo{}
		}
		x.InBlocks, x.OutBlocks = m.Blocks, m.Blocks
		x.RowsPerBlock = m.RowsPerBlock
		return geom(m.Rows, m.RowsPerBlock, m.RecordSize)
	case *plan.IndexScan:
		m, ok := cat.TableMeta(x.Table)
		if !ok {
			return nodeInfo{}
		}
		// Price the two §3 storage methods against each other: full flat
		// scan vs. ORAM-backed B+ tree descent. Choosing the index leaks
		// the scanned segment's size (the conceded leakage of §4.1); the
		// materialized output is still padded to the whole table, and
		// range-scan materializations repack at the engine's geometry,
		// which the catalog reports per table.
		ch := ChooseAccess(m, x.Range)
		x.IndexCost, x.FlatCost = ch.IndexCost, ch.FlatCost
		if ch.UseIndex {
			x.Algorithm, x.Cost = "IndexRange", ch.IndexCost
		} else {
			x.Algorithm, x.Cost = "FlatScan", ch.FlatCost
		}
		x.Estimated = true
		x.InBlocks, x.OutBlocks = m.Blocks, m.Blocks
		x.RowsPerBlock = m.RowsPerBlock
		return geom(m.Rows, m.RowsPerBlock, m.RecordSize)
	case *plan.Filter:
		in := rec(x.Input)
		if fused {
			// The parent operator's scan evaluates this predicate in
			// its own single pass; no SELECT algorithm runs.
			x.Algorithm, x.Estimated = "FusedScan", false
			x.InBlocks, x.OutBlocks = in.blocks, in.blocks
			x.RowsPerBlock = in.rpb
			x.Parallelism = ChooseParallelism(e, in.blocks, in.recSize, maxWorkers)
			x.Cost = int64(in.blocks)
			return in
		}
		st := SelectStats{
			InputBlocks:  in.blocks,
			InputRows:    in.rows,
			RowsPerBlock: in.rpb,
			Matching:     in.rows,
		}
		var alg exec.SelectAlgorithm
		var cost float64
		if x.Force != nil {
			alg = *x.Force
			cost = SelectCost(alg, e, in.recSize, st, cfg)
			x.Estimated = false
		} else {
			alg, cost = chooseSelectCost(e, in.recSize, st, cfg)
			x.Estimated = true
		}
		x.Algorithm = alg.String()
		x.InBlocks, x.OutBlocks = in.blocks, in.blocks
		x.RowsPerBlock = in.rpb
		x.Parallelism = ChooseParallelism(e, in.blocks, in.recSize, maxWorkers)
		x.Cost = finiteCost(cost)
		return in
	case *plan.Join:
		l, r := rec(x.Left), rec(x.Right)
		sizes := JoinSizes{
			T1Blocks:      l.blocks,
			T2Blocks:      r.blocks,
			T1Rows:        l.rows,
			T2Rows:        r.rows,
			BuildRecSize:  l.recSize,
			SortBlockSize: 9 + max(l.recSize, r.recSize),
		}
		var alg exec.JoinAlgorithm
		var cost float64
		if x.Force != nil {
			alg, cost = *x.Force, math.NaN()
		} else {
			alg, cost = chooseJoinCost(e, sizes)
		}
		x.Algorithm = alg.String()
		x.InBlocks = l.blocks + r.blocks
		x.OutBlocks = l.blocks + r.blocks
		// Output geometry matches execution: the hash join's output
		// inherits the probe side's R, the sort-merge joins the primary
		// side's.
		outRpb := l.rpb
		if alg == exec.JoinHash {
			outRpb = r.rpb
		}
		x.RowsPerBlock = outRpb
		x.Cost = finiteCost(cost)
		return geom(l.rows+r.rows, outRpb, l.recSize+r.recSize)
	case *plan.Aggregate:
		in := recFused(x.Input)
		return geom(1, 1, in.recSize)
	case *plan.GroupBy:
		in := recFused(x.Input)
		x.Algorithm = "HashGroup"
		x.InBlocks, x.OutBlocks = in.blocks, in.blocks
		x.RowsPerBlock = in.rpb
		x.Cost = int64(in.blocks)
		return in
	case *plan.Sort:
		in := recFused(x.Input)
		n2 := exec.NextPow2(maxInt(1, in.rows))
		chunk := exec.FloorPow2(e.Available() / maxInt(1, in.recSize))
		if chunk < 1 {
			chunk = 1
		}
		if chunk > n2 {
			chunk = n2
		}
		out := geom(n2, in.rpb, in.recSize)
		x.Algorithm = "BitonicSort"
		x.InBlocks, x.OutBlocks = in.blocks, out.blocks
		x.RowsPerBlock = in.rpb
		x.Parallelism = 1
		// Fill pass (one read per input block, one write per scratch
		// record), the record-granular network's passes at two accesses
		// per record per pass, then — at R > 1 only — the emit pass that
		// re-packs (n reads + packed writes); at R = 1 the output is
		// sorted in place.
		emit := int64(0)
		if in.rpb > 1 {
			emit = int64(n2) + int64(out.blocks)
		}
		x.Cost = int64(in.blocks+n2) + int64(2*n2)*int64(sortNetworkPasses(n2, chunk)) + emit
		return out
	case *plan.Limit:
		in := rec(x.Input)
		return geom(x.N, in.rpb, in.recSize)
	case *plan.Project:
		return rec(x.Input)
	case *plan.Collect:
		return rec(x.Input)
	case *plan.Update, *plan.Delete, *plan.Insert:
		// DML nodes carry no Choice: their operators are fixed
		// full-scan (or index-ranged) passes.
		return nodeInfo{}
	}
	return nodeInfo{}
}

// sortNetworkPasses counts the block-array passes of the chunked
// bitonic sort of exec.ObliviousSort: the initial chunk pass, each
// stage's network substages with j >= chunk, and one in-enclave chunk
// merge per stage (the same accounting ChooseJoin applies to the
// sort-merge joins).
func sortNetworkPasses(n, chunk int) int {
	if chunk >= n {
		return 1
	}
	logN, logC := log2i(n), log2i(chunk)
	passes := 1
	for m := logC + 1; m <= logN; m++ {
		passes += m - logC
		if chunk > 1 {
			passes++
		}
	}
	return passes
}

// finiteCost rounds a cost estimate for display, dropping the
// non-finite sentinels of inapplicable algorithms.
func finiteCost(c float64) int64 {
	if math.IsInf(c, 0) || math.IsNaN(c) {
		return 0
	}
	return int64(math.Round(c))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
