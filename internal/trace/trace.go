// Package trace records the sequence of accesses an algorithm makes to
// untrusted memory. In the paper's threat model (§2.2) the adversary
// controls the OS and observes every address the enclave touches outside
// its protected region; this package makes that adversarial view a
// first-class artifact so tests can assert that two executions are
// indistinguishable.
//
// A Tracer collects Events. Each Event names a region (a logical untrusted
// data structure, e.g. one table's block array or one ORAM's bucket tree),
// an operation (read or write), and a block index within the region.
// Obliviousness of an operator is then the statement: for fixed public
// parameters (table sizes, operator choice), the trace is identical no
// matter what the data or query parameters are.
package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op distinguishes reads from writes. The adversary sees which one occurs
// (bus direction / page permissions), so both are part of the trace.
type Op uint8

const (
	// Read is an untrusted-memory read.
	Read Op = iota
	// Write is an untrusted-memory write.
	Write
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Region identifies one untrusted data structure. Regions are compared by
// value; allocate them with Tracer.Region so names stay unique.
type Region struct {
	id   uint32
	name string
}

// Name returns the human-readable region name.
func (r Region) Name() string { return r.name }

// Event is a single untrusted-memory access.
type Event struct {
	Region uint32
	Op     Op
	Index  uint32
}

// Tracer accumulates events. The zero value is a valid, disabled tracer:
// Record is a no-op until Enable is called, so production paths pay nothing
// when tracing is off.
//
// A Tracer is safe for concurrent use: an engine's base tracer can be
// shared by per-table index contexts that run on different goroutines
// (enclave.Child shares the parent tracer). The nil-tracer fast path
// stays lock-free.
type Tracer struct {
	mu      sync.Mutex
	enabled bool
	events  []Event
	regions []string
	counts  map[uint32]uint64 // per-region access counts, kept even when full event log disabled
	countOn bool
}

// New returns an enabled Tracer.
func New() *Tracer {
	t := &Tracer{}
	t.Enable()
	return t
}

// Enable turns on full event recording.
func (t *Tracer) Enable() {
	t.mu.Lock()
	t.enabled = true
	t.mu.Unlock()
}

// Disable turns off full event recording (counting continues if on).
func (t *Tracer) Disable() {
	t.mu.Lock()
	t.enabled = false
	t.mu.Unlock()
}

// Enabled reports whether full event recording is on.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// EnableCounts turns on lightweight per-region access counting, which is
// cheap enough to leave on during benchmarks.
func (t *Tracer) EnableCounts() {
	t.mu.Lock()
	t.countOn = true
	if t.counts == nil {
		t.counts = make(map[uint32]uint64)
	}
	t.mu.Unlock()
}

// Region registers a named region and returns its handle.
func (t *Tracer) Region(name string) Region {
	if t == nil {
		return Region{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := uint32(len(t.regions))
	t.regions = append(t.regions, name)
	return Region{id: id, name: name}
}

// Record appends one event. It is a no-op on a nil or disabled tracer.
func (t *Tracer) Record(r Region, op Op, index int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.countOn {
		t.counts[r.id]++
	}
	if t.enabled {
		t.events = append(t.events, Event{Region: r.id, Op: op, Index: uint32(index)})
	}
	t.mu.Unlock()
}

// Reset discards all recorded events and counts but keeps region names.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	for k := range t.counts {
		delete(t.counts, k)
	}
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns the recorded events. The returned slice aliases internal
// storage; callers must not mutate it, and must not call it while other
// goroutines are still recording.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Count returns the number of accesses recorded against a region.
func (t *Tracer) Count(r Region) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[r.id]
}

// TotalCount returns the number of accesses recorded against all regions.
func (t *Tracer) TotalCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// Fingerprint returns a SHA-256 digest of the event sequence. Two traces
// are indistinguishable to the adversary exactly when their fingerprints
// are equal (region ids are allocation-ordered, so equal programs produce
// equal ids).
func (t *Tracer) Fingerprint() [32]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	var buf [9]byte
	for _, e := range t.events {
		binary.LittleEndian.PutUint32(buf[0:4], e.Region)
		buf[4] = byte(e.Op)
		binary.LittleEndian.PutUint32(buf[5:9], e.Index)
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CanonicalFingerprint digests the trace with region ids renumbered by
// first appearance. Two runs of the same program segment that allocate
// fresh untrusted structures (temporary tables get new region ids each
// time) are pattern-identical exactly when their canonical fingerprints
// match; the adversary likewise identifies fresh allocations only by
// order of appearance.
func (t *Tracer) CanonicalFingerprint() [32]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	remap := make(map[uint32]uint32, 8)
	var buf [9]byte
	for _, e := range t.events {
		id, ok := remap[e.Region]
		if !ok {
			id = uint32(len(remap))
			remap[e.Region] = id
		}
		binary.LittleEndian.PutUint32(buf[0:4], id)
		buf[4] = byte(e.Op)
		binary.LittleEndian.PutUint32(buf[5:9], e.Index)
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// MultisetFingerprint digests a parallel execution observed through
// per-worker tracers. Each worker's trace is reduced to its canonical
// fingerprint, the fingerprints are sorted, and the sorted sequence is
// hashed. The result is therefore independent of which worker ran on
// which OS thread and of how the scheduler interleaved them — the
// adversary sees per-core access streams, and obliviousness of a
// partition-parallel operator is the statement that this multiset of
// streams is input-independent for fixed public parameters (partition
// count P and partition sizes).
func MultisetFingerprint(workers []*Tracer) [32]byte {
	prints := make([][32]byte, len(workers))
	for i, w := range workers {
		prints[i] = w.CanonicalFingerprint()
	}
	sort.Slice(prints, func(i, j int) bool {
		return bytes.Compare(prints[i][:], prints[j][:]) < 0
	})
	h := sha256.New()
	for _, p := range prints {
		h.Write(p[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Diff compares two traces and returns a description of the first
// divergence, or "" if the traces are identical. Intended for test
// failure messages.
func Diff(a, b *Tracer) string {
	ea, eb := a.Events(), b.Events()
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	for i := 0; i < n; i++ {
		if ea[i] != eb[i] {
			return fmt.Sprintf("traces diverge at event %d: %s vs %s",
				i, a.format(ea[i]), b.format(eb[i]))
		}
	}
	if len(ea) != len(eb) {
		return fmt.Sprintf("trace lengths differ: %d vs %d events", len(ea), len(eb))
	}
	return ""
}

// Equal reports whether two traces recorded identical event sequences.
func Equal(a, b *Tracer) bool { return Diff(a, b) == "" }

func (t *Tracer) format(e Event) string {
	name := fmt.Sprintf("region%d", e.Region)
	if int(e.Region) < len(t.regions) {
		name = t.regions[e.Region]
	}
	return fmt.Sprintf("%s[%d].%s", name, e.Index, e.Op)
}

// String renders the whole trace, one event per line. Useful only for
// small traces in debugging.
func (t *Tracer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for _, e := range t.events {
		sb.WriteString(t.format(e))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// normalizeRegion strips ASCII digits from a region name. Temporary
// structures are named with a global sequence number ("tmp12.select"), so
// the same statement executed at a different point in an interleaving
// allocates a differently-numbered — but structurally identical — region.
// The adversary can of course see allocation order; digit-stripped names
// compare what it learns beyond that order, which is what the
// interleaving-independence tests pin.
func normalizeRegion(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		if name[i] >= '0' && name[i] <= '9' {
			continue
		}
		sb.WriteByte(name[i])
	}
	return sb.String()
}

// namedEvents renders a tracer's events as "name op index" strings with
// digit-normalized region names.
func (t *Tracer) namedEvents() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.events))
	for _, e := range t.events {
		name := fmt.Sprintf("region%d", e.Region)
		if int(e.Region) < len(t.regions) {
			name = normalizeRegion(t.regions[e.Region])
		}
		out = append(out, fmt.Sprintf("%s %s %d", name, e.Op, e.Index))
	}
	return out
}

// EventMultisetFingerprint digests the multiset of (normalized region
// name, op, block index) tuples recorded across a set of tracers. Unlike
// MultisetFingerprint — which hashes each worker's stream whole and so is
// sensitive to how statements were assigned to workers — this collapses
// the execution to the unordered bag of accesses the adversary observed,
// with temporary-structure sequence numbers normalized away. A serial
// engine and a concurrent engine executing the same statements are
// equivalent under this fingerprint exactly when concurrency changed
// nothing about which structures were touched, how often, and at which
// block offsets.
func EventMultisetFingerprint(tracers ...*Tracer) [32]byte {
	var all []string
	for _, t := range tracers {
		all = append(all, t.namedEvents()...)
	}
	sort.Strings(all)
	h := sha256.New()
	for _, s := range all {
		h.Write([]byte(s))
		h.Write([]byte{'\n'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// NormalizedRegionCounts folds per-region access counts across tracers,
// keyed by digit-normalized region name. ORAM access patterns are
// randomized per run (leaf assignment draws from a PRNG whose consumption
// order depends on statement interleaving), so concurrent-vs-serial
// comparisons for index-backed workloads assert on these counts — the
// number of accesses per structure is fixed by public parameters (tree
// height, padded ops) even when the leaf sequence is not.
func NormalizedRegionCounts(tracers ...*Tracer) map[string]uint64 {
	out := make(map[string]uint64)
	for _, t := range tracers {
		if t == nil {
			continue
		}
		t.mu.Lock()
		for _, e := range t.events {
			name := fmt.Sprintf("region%d", e.Region)
			if int(e.Region) < len(t.regions) {
				name = normalizeRegion(t.regions[e.Region])
			}
			out[name]++
		}
		for id, c := range t.counts {
			if !t.enabled { // counts double events when both are on
				name := fmt.Sprintf("region%d", id)
				if int(id) < len(t.regions) {
					name = normalizeRegion(t.regions[id])
				}
				out[name] += c
			}
		}
		t.mu.Unlock()
	}
	return out
}
