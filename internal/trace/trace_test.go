package trace

import (
	"testing"
	"testing/quick"
)

func TestZeroValueDisabled(t *testing.T) {
	var tr Tracer
	r := tr.Region("x")
	tr.Record(r, Read, 0)
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Len())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	r := tr.Region("x")
	tr.Record(r, Read, 1) // must not panic
	tr.Reset()
	if tr.Len() != 0 || tr.Count(r) != 0 || tr.TotalCount() != 0 {
		t.Fatal("nil tracer should report zero everything")
	}
}

func TestRecordAndEqual(t *testing.T) {
	a, b := New(), New()
	ra, rb := a.Region("t"), b.Region("t")
	for i := 0; i < 10; i++ {
		a.Record(ra, Read, i)
		b.Record(rb, Read, i)
	}
	if !Equal(a, b) {
		t.Fatalf("identical traces not equal: %s", Diff(a, b))
	}
	b.Record(rb, Write, 3)
	if Equal(a, b) {
		t.Fatal("traces of different length reported equal")
	}
}

func TestDiffReportsFirstDivergence(t *testing.T) {
	a, b := New(), New()
	ra, rb := a.Region("t"), b.Region("t")
	a.Record(ra, Read, 1)
	a.Record(ra, Write, 2)
	b.Record(rb, Read, 1)
	b.Record(rb, Write, 3)
	d := Diff(a, b)
	if d == "" {
		t.Fatal("divergent traces reported equal")
	}
}

func TestFingerprintMatchesEqual(t *testing.T) {
	f := func(ops []bool, idxs []uint16) bool {
		a, b := New(), New()
		ra, rb := a.Region("t"), b.Region("t")
		n := len(ops)
		if len(idxs) < n {
			n = len(idxs)
		}
		for i := 0; i < n; i++ {
			op := Read
			if ops[i] {
				op = Write
			}
			a.Record(ra, op, int(idxs[i]))
			b.Record(rb, op, int(idxs[i]))
		}
		return Equal(a, b) && a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a, b := New(), New()
	ra, rb := a.Region("t"), b.Region("t")
	a.Record(ra, Read, 1)
	b.Record(rb, Read, 2)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different traces share a fingerprint")
	}
}

func TestResetClearsEventsKeepsRegions(t *testing.T) {
	tr := New()
	tr.EnableCounts()
	r := tr.Region("t")
	tr.Record(r, Read, 0)
	tr.Reset()
	if tr.Len() != 0 || tr.Count(r) != 0 {
		t.Fatal("reset did not clear")
	}
	tr.Record(r, Write, 5)
	if tr.Len() != 1 || tr.Count(r) != 1 {
		t.Fatal("tracer unusable after reset")
	}
}

func TestCountsWithoutEvents(t *testing.T) {
	tr := &Tracer{}
	tr.EnableCounts()
	r := tr.Region("t")
	for i := 0; i < 7; i++ {
		tr.Record(r, Read, i)
	}
	if tr.Len() != 0 {
		t.Fatalf("count-only tracer stored %d events", tr.Len())
	}
	if tr.Count(r) != 7 || tr.TotalCount() != 7 {
		t.Fatalf("count = %d, want 7", tr.Count(r))
	}
}

func TestStringAndOpString(t *testing.T) {
	tr := New()
	r := tr.Region("tbl")
	tr.Record(r, Read, 4)
	tr.Record(r, Write, 9)
	want := "tbl[4].R\ntbl[9].W\n"
	if got := tr.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestCanonicalFingerprint(t *testing.T) {
	// Two runs allocating regions in the same pattern but with different
	// absolute ids are canonically equal...
	a := New()
	_ = a.Region("setup") // consumes id 0
	r1 := a.Region("x")
	a.Record(r1, Read, 5)

	b := New()
	s1 := b.Region("x") // id 0 here
	b.Record(s1, Read, 5)

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("raw fingerprints should differ (different region ids)")
	}
	if a.CanonicalFingerprint() != b.CanonicalFingerprint() {
		t.Fatal("canonical fingerprints should match")
	}

	// ...but different patterns stay distinguishable.
	c := New()
	c1 := c.Region("x")
	c.Record(c1, Write, 5)
	if a.CanonicalFingerprint() == c.CanonicalFingerprint() {
		t.Fatal("canonicalization erased an op difference")
	}

	// Interleaving across two regions is preserved.
	d1, d2 := New(), New()
	p1, p2 := d1.Region("p"), d1.Region("q")
	q1, q2 := d2.Region("p"), d2.Region("q")
	d1.Record(p1, Read, 0)
	d1.Record(p2, Read, 0)
	d2.Record(q2, Read, 0)
	d2.Record(q1, Read, 0)
	if d1.CanonicalFingerprint() != d2.CanonicalFingerprint() {
		// First-appearance numbering makes these equal: both are
		// "fresh region, then another fresh region".
		t.Fatal("symmetric interleavings should canonicalize equal")
	}
}

func TestRegionsIndependent(t *testing.T) {
	a := New()
	r1 := a.Region("one")
	r2 := a.Region("two")
	a.Record(r1, Read, 0)

	b := New()
	s1 := b.Region("one")
	s2 := b.Region("two")
	b.Record(s2, Read, 0)
	_ = r2
	_ = s1
	if Equal(a, b) {
		t.Fatal("accesses to different regions compared equal")
	}
}

func TestMultisetFingerprintOrderIndependent(t *testing.T) {
	mk := func(indices ...int) *Tracer {
		tr := New()
		r := tr.Region("part")
		for _, i := range indices {
			tr.Record(r, Read, i)
		}
		return tr
	}
	a := []*Tracer{mk(0, 1, 2), mk(3, 4), mk(5)}
	b := []*Tracer{mk(5), mk(0, 1, 2), mk(3, 4)} // same traces, permuted workers
	if MultisetFingerprint(a) != MultisetFingerprint(b) {
		t.Fatal("multiset fingerprint depends on worker order")
	}
	c := []*Tracer{mk(5), mk(0, 1, 2), mk(3, 9)} // one event differs
	if MultisetFingerprint(a) == MultisetFingerprint(c) {
		t.Fatal("multiset fingerprint missed a differing trace")
	}
}

func TestMultisetFingerprintCanonicalizesRegions(t *testing.T) {
	// Two workers that allocate fresh regions (different ids, same
	// pattern) must fingerprint equal — region identity is canonicalized
	// per worker by first appearance, like CanonicalFingerprint.
	a := New()
	a.Region("scratch") // unused extra region shifts ids
	ra := a.Region("part")
	a.Record(ra, Write, 7)
	b := New()
	rb := b.Region("part")
	b.Record(rb, Write, 7)
	if MultisetFingerprint([]*Tracer{a}) != MultisetFingerprint([]*Tracer{b}) {
		t.Fatal("multiset fingerprint not canonical over region ids")
	}
}
